"""Tree-walking interpreter for ALPS procedure and manager bodies.

Statements execute as generator code yielding kernel syscalls, so an
interpreted ALPS procedure is a first-class lightweight process exactly
like a hand-written one.  Expressions are pure (no blocking): calls in
expression position are restricted to builtins; entry calls appear as
statements or as the right-hand side of an assignment.
"""

from __future__ import annotations

from typing import Any

from ..channels.channel import Channel, Receive, ReceiveGuard, Send
from ..core.object_model import AlpsObject, BoundEntry
from ..core.primitives import (
    AcceptGuard,
    AwaitGuard,
    Finish,
    Start,
    WhenGuard,
    accept,
    await_call,
    execute_call,
)
from ..errors import AlpsError
from ..kernel.syscalls import Charge, Select
from . import ast


class LangRuntimeError(AlpsError):
    """Semantic error while executing interpreted ALPS code."""


class _Return(Exception):
    """Signals a ``return`` out of a procedure body."""

    def __init__(self, values: tuple) -> None:
        super().__init__("return")
        self.values = values


#: Builtin functions callable in expression position.
BUILTINS: dict[str, Any] = {
    "array": lambda n: [None] * int(n),
    "chan": lambda *a: Channel(),
    "len": len,
    "abs": abs,
    "min": min,
    "max": max,
    "str": str,
    "int": int,
    "ord": ord,
    "chr": chr,
}


class Env:
    """Lexical environment: locals over object attributes over module
    instances over builtins."""

    __slots__ = ("locals", "obj", "module")

    def __init__(self, obj: AlpsObject, module: "Any", locals_: dict | None = None) -> None:
        self.locals = locals_ if locals_ is not None else {}
        self.obj = obj
        self.module = module

    def child(self, locals_: dict) -> "Env":
        merged = dict(self.locals)
        merged.update(locals_)
        return Env(self.obj, self.module, merged)

    def lookup(self, name: str) -> Any:
        if name in self.locals:
            return self.locals[name]
        if self.obj is not None and hasattr(self.obj, name):
            return getattr(self.obj, name)
        if self.module is not None and name in self.module.instances:
            return self.module.instances[name]
        if name in BUILTINS:
            return BUILTINS[name]
        raise LangRuntimeError(f"undefined name {name!r}")

    def assign(self, name: str, value: Any) -> None:
        if name in self.locals:
            self.locals[name] = value
            return
        if self.obj is not None and hasattr(self.obj, name):
            setattr(self.obj, name, value)
            return
        self.locals[name] = value


# ----------------------------------------------------------------------
# Expression evaluation (pure)
# ----------------------------------------------------------------------


def eval_expr(env: Env, node: Any) -> Any:
    if isinstance(node, ast.Num):
        return node.value
    if isinstance(node, ast.Str):
        return node.value
    if isinstance(node, ast.Bool):
        return node.value
    if isinstance(node, ast.Nil):
        return None
    if isinstance(node, ast.Var):
        return env.lookup(node.name)
    if isinstance(node, ast.Index):
        return eval_expr(env, node.base)[eval_expr(env, node.index)]
    if isinstance(node, ast.Field):
        return getattr(eval_expr(env, node.base), node.name)
    if isinstance(node, ast.Pending):
        return env.obj.pending(_runtime_proc_name(env.obj, node.proc))
    if isinstance(node, ast.Unary):
        value = eval_expr(env, node.operand)
        return (not value) if node.op == "not" else -value
    if isinstance(node, ast.Binary):
        return _binary(env, node)
    if isinstance(node, ast.CallExpr):
        if node.target is None and node.name in BUILTINS:
            args = [eval_expr(env, a) for a in node.args]
            return BUILTINS[node.name](*args)
        raise LangRuntimeError(
            f"call to {node.name!r} is not allowed in expression position "
            f"(entry calls must be statements or assignment right-hand sides)"
        )
    raise LangRuntimeError(f"cannot evaluate {node!r}")


def _binary(env: Env, node: ast.Binary) -> Any:
    op = node.op
    if op == "and":
        return bool(eval_expr(env, node.left)) and bool(eval_expr(env, node.right))
    if op == "or":
        return bool(eval_expr(env, node.left)) or bool(eval_expr(env, node.right))
    left = eval_expr(env, node.left)
    right = eval_expr(env, node.right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "div":
        return left // right
    if op == "mod":
        return left % right
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise LangRuntimeError(f"unknown operator {op!r}")


def _runtime_proc_name(obj: AlpsObject, source_name: str) -> str:
    """ALPS source is case-insensitive on keywords but we match procedure
    names case-sensitively first, then case-insensitively."""
    if source_name in obj._runtimes:
        return source_name
    lowered = source_name.lower()
    for name in obj._runtimes:
        if name.lower() == lowered:
            return name
    raise LangRuntimeError(
        f"{obj.alps_name} has no procedure {source_name!r}"
    )


def assign_lvalue(env: Env, target: Any, value: Any) -> None:
    if isinstance(target, ast.Var):
        env.assign(target.name, value)
    elif isinstance(target, ast.Index):
        eval_expr(env, target.base)[eval_expr(env, target.index)] = value
    elif isinstance(target, ast.Field):
        setattr(eval_expr(env, target.base), target.name, value)
    else:
        raise LangRuntimeError(f"cannot assign to {target!r}")


# ----------------------------------------------------------------------
# Statement execution (generator)
# ----------------------------------------------------------------------


def exec_stmts(env: Env, stmts: list, mgr: "ManagerState | None" = None):
    for stmt in stmts:
        yield from exec_stmt(env, stmt, mgr)


def exec_stmt(env: Env, stmt: Any, mgr: "ManagerState | None"):
    if isinstance(stmt, ast.Assign):
        yield from _exec_assign(env, stmt)
    elif isinstance(stmt, ast.CallStmt):
        yield from _perform_call(env, stmt.call)
    elif isinstance(stmt, ast.If):
        for cond, body in stmt.arms:
            if eval_expr(env, cond):
                yield from exec_stmts(env, body, mgr)
                return
        yield from exec_stmts(env, stmt.orelse, mgr)
    elif isinstance(stmt, ast.While):
        while eval_expr(env, stmt.cond):
            yield from exec_stmts(env, stmt.body, mgr)
    elif isinstance(stmt, ast.SendStmt):
        channel = eval_expr(env, stmt.channel)
        values = [eval_expr(env, v) for v in stmt.values]
        yield Send(channel, *values)
    elif isinstance(stmt, ast.ReceiveStmt):
        channel = eval_expr(env, stmt.channel)
        message = yield Receive(channel)
        _bind_message(env, stmt.targets, message)
    elif isinstance(stmt, ast.WorkStmt):
        yield Charge(int(eval_expr(env, stmt.amount)))
    elif isinstance(stmt, ast.ReturnStmt):
        raise _Return(tuple(eval_expr(env, v) for v in stmt.values))
    elif isinstance(stmt, ast.SkipStmt):
        pass
    elif isinstance(stmt, ast.SelectStmt):
        yield from _exec_select(env, stmt, mgr)
    elif isinstance(stmt, ast.AcceptStmt):
        yield from _exec_accept(env, stmt, _need_mgr(mgr, "accept"))
    elif isinstance(stmt, ast.StartStmt):
        yield from _exec_start(env, stmt, _need_mgr(mgr, "start"))
    elif isinstance(stmt, ast.AwaitStmt):
        yield from _exec_await(env, stmt, _need_mgr(mgr, "await"))
    elif isinstance(stmt, ast.FinishStmt):
        yield from _exec_finish(env, stmt, _need_mgr(mgr, "finish"))
    elif isinstance(stmt, ast.ExecuteStmt):
        yield from _exec_execute(env, stmt, _need_mgr(mgr, "execute"))
    else:
        raise LangRuntimeError(f"cannot execute {stmt!r}")


def _need_mgr(mgr: "ManagerState | None", what: str) -> "ManagerState":
    if mgr is None:
        raise LangRuntimeError(f"{what} is only allowed inside a manager")
    return mgr


def _bind_message(env: Env, targets: list, message: Any) -> None:
    if len(targets) == 0:
        return
    if len(targets) == 1:
        assign_lvalue(env, targets[0], message)
        return
    values = tuple(message) if isinstance(message, tuple) else (message,)
    if len(values) != len(targets):
        raise LangRuntimeError(
            f"receive: {len(targets)} targets but message has {len(values)} values"
        )
    for target, value in zip(targets, values):
        assign_lvalue(env, target, value)


def _exec_assign(env: Env, stmt: ast.Assign):
    if isinstance(stmt.value, ast.CallExpr) and not (
        stmt.value.target is None and stmt.value.name in BUILTINS
    ):
        result = yield from _perform_call(env, stmt.value)
    else:
        result = eval_expr(env, stmt.value)
    if len(stmt.targets) == 1:
        assign_lvalue(env, stmt.targets[0], result)
    else:
        values = tuple(result) if isinstance(result, tuple) else (result,)
        if len(values) != len(stmt.targets):
            raise LangRuntimeError(
                f"assignment: {len(stmt.targets)} targets but call "
                f"returned {len(values)} values"
            )
        for target, value in zip(stmt.targets, values):
            assign_lvalue(env, target, value)


def _perform_call(env: Env, call: ast.CallExpr):
    """Entry/local call as a statement or assignment RHS (blocking)."""
    args = [eval_expr(env, a) for a in call.args]
    if call.target is None:
        if call.name in BUILTINS and not _resolves_to_proc(env, call.name):
            return BUILTINS[call.name](*args)
        # Local/entry procedure of this object.
        proc_name = _runtime_proc_name(env.obj, call.name)
        result = yield env.obj.call(proc_name, *args)
        return result
    target = eval_expr(env, call.target)
    if isinstance(target, AlpsObject):
        proc_name = _runtime_proc_name(target, call.name)
        result = yield target.call(proc_name, *args)
        return result
    bound = getattr(target, call.name, None)
    if isinstance(bound, BoundEntry):
        result = yield bound(*args)
        return result
    if callable(bound):
        return bound(*args)
    raise LangRuntimeError(f"cannot call {call.name!r} on {target!r}")


def _resolves_to_proc(env: Env, name: str) -> bool:
    try:
        _runtime_proc_name(env.obj, name)
        return True
    except LangRuntimeError:
        return False


# ----------------------------------------------------------------------
# Manager primitives
# ----------------------------------------------------------------------


class ManagerState:
    """Tracks the manager's outstanding calls per procedure.

    The surface syntax names procedures (``start Read``); the runtime
    needs call handles.  ``accepted[p]`` is the most recently accepted,
    not yet started/finished call; ``awaited[p]`` the most recently
    awaited one.  This matches the paper's examples, where each primitive
    operates on "the" current call of the named procedure.
    """

    def __init__(self) -> None:
        self.accepted: dict[str, list] = {}
        self.awaited: dict[str, list] = {}

    def push(self, table: dict, proc: str, call: Any) -> None:
        table.setdefault(proc, []).append(call)

    def pop(self, table: dict, proc: str) -> Any:
        stack = table.get(proc)
        if not stack:
            return None
        return stack.pop()


def _exec_accept(env: Env, stmt: ast.AcceptStmt, mgr: ManagerState):
    proc = _runtime_proc_name(env.obj, stmt.proc)
    call = yield accept(env.obj, proc)
    mgr.push(mgr.accepted, proc, call)
    _bind_names(env, stmt.params, call.intercepted_args, "accept")


def _exec_start(env: Env, stmt: ast.StartStmt, mgr: ManagerState):
    proc = _runtime_proc_name(env.obj, stmt.proc)
    call = mgr.pop(mgr.accepted, proc)
    if call is None:
        raise LangRuntimeError(f"start {stmt.proc}: no accepted call")
    hidden = [eval_expr(env, h) for h in stmt.hidden]
    # The source form 'start P(Word, Place)' re-supplies the intercepted
    # parameters first (the manager "supplies all the invocation
    # parameters that it received", §2.3); only the surplus beyond the
    # intercepted count are hidden parameters.
    icpt = call.spec.intercept.params if call.spec.intercept else 0
    surplus = hidden[icpt:] if len(hidden) > call.spec.hidden_params else hidden
    yield Start(call, *surplus)


def _await_values(call: Any) -> tuple:
    """Everything the manager may receive at ``await``: the intercepted
    prefix of the definition results plus any hidden results (§2.8)."""
    return tuple(call.intercepted_results) + tuple(call.hidden_results)


def _exec_await(env: Env, stmt: ast.AwaitStmt, mgr: ManagerState):
    proc = _runtime_proc_name(env.obj, stmt.proc)
    call = yield await_call(env.obj, proc)
    mgr.push(mgr.awaited, proc, call)
    _bind_names(env, stmt.results, _await_values(call), "await")


def _exec_finish(env: Env, stmt: ast.FinishStmt, mgr: ManagerState):
    proc = _runtime_proc_name(env.obj, stmt.proc)
    call = mgr.pop(mgr.awaited, proc)
    if call is None:
        call = mgr.pop(mgr.accepted, proc)  # combining (§2.7)
    if call is None:
        raise LangRuntimeError(f"finish {stmt.proc}: no awaited or accepted call")
    results = [eval_expr(env, r) for r in stmt.results]
    yield Finish(call, *results)


def _exec_execute(env: Env, stmt: ast.ExecuteStmt, mgr: ManagerState):
    proc = _runtime_proc_name(env.obj, stmt.proc)
    call = mgr.pop(mgr.accepted, proc)
    if call is None:
        raise LangRuntimeError(f"execute {stmt.proc}: no accepted call")
    hidden = [eval_expr(env, h) for h in stmt.hidden]
    icpt = call.spec.intercept.params if call.spec.intercept else 0
    surplus = hidden[icpt:] if len(hidden) > call.spec.hidden_params else hidden
    yield from execute_call(call, *surplus)


def _bind_names(env: Env, names: list, values: tuple, what: str) -> None:
    if not names:
        return
    if len(names) > len(values):
        raise LangRuntimeError(
            f"{what}: binds {len(names)} names but only {len(values)} "
            f"intercepted values are available"
        )
    for name, value in zip(names, values):
        env.assign(name, value)


# ----------------------------------------------------------------------
# select / loop
# ----------------------------------------------------------------------


def _make_guard(env: Env, clause: ast.GuardClause):
    if clause.kind == "accept":
        proc = _runtime_proc_name(env.obj, clause.proc)
        return AcceptGuard(
            env.obj,
            proc,
            when=_param_condition(env, clause),
            pri=_call_pri(env, clause, use_args=True),
        )
    if clause.kind == "await":
        proc = _runtime_proc_name(env.obj, clause.proc)
        return AwaitGuard(
            env.obj,
            proc,
            when=_param_condition(env, clause),
            pri=_call_pri(env, clause, use_args=False),
        )
    if clause.kind == "receive":
        channel = eval_expr(env, clause.channel)
        when = None
        if clause.when is not None:
            binders = clause.binders

            def when(*values, _b=binders, _e=env, _c=clause):
                scoped = _e.child(dict(zip(_b, values)))
                return bool(eval_expr(scoped, _c.when))

        pri = None
        if clause.pri is not None:
            binders = clause.binders

            def pri(value, _b=binders, _e=env, _c=clause):
                values = value if isinstance(value, tuple) else (value,)
                scoped = _e.child(dict(zip(_b, values)))
                return int(eval_expr(scoped, _c.pri))

        return ReceiveGuard(channel, when=when, pri=pri)
    # pure boolean guard
    return WhenGuard(lambda _e=env, _c=clause: bool(eval_expr(_e, _c.when)))


def _param_condition(env: Env, clause: ast.GuardClause):
    if clause.when is None:
        return None
    binders = clause.binders

    def condition(*values, _b=binders, _e=env, _c=clause):
        scoped = _e.child(dict(zip(_b, values)))
        return bool(eval_expr(scoped, _c.when))

    return condition


def _call_pri(env: Env, clause: ast.GuardClause, use_args: bool):
    if clause.pri is None:
        return None
    binders = clause.binders

    def pri(call, _b=binders, _e=env, _c=clause, _args=use_args):
        values = call.intercepted_args if _args else call.intercepted_results
        scoped = _e.child(dict(zip(_b, values)))
        return int(eval_expr(scoped, _c.pri))

    return pri


def _exec_select(env: Env, stmt: ast.SelectStmt, mgr: ManagerState | None):
    def run_once():
        guards = [_make_guard(env, clause) for clause in stmt.clauses]
        result = yield Select(*guards)
        clause = stmt.clauses[result.index]
        if clause.kind in ("accept", "await"):
            call = result.value
            proc = _runtime_proc_name(env.obj, clause.proc)
            state = _need_mgr(mgr, clause.kind)
            if clause.kind == "accept":
                state.push(state.accepted, proc, call)
                _bind_names(env, clause.binders, call.intercepted_args, "accept")
            else:
                state.push(state.awaited, proc, call)
                _bind_names(env, clause.binders, _await_values(call), "await")
        elif clause.kind == "receive":
            message = result.value
            values = message if isinstance(message, tuple) else (message,)
            _bind_names(env, clause.binders, values, "receive")
        yield from exec_stmts(env, clause.body, mgr)

    if stmt.repetitive:
        while True:
            yield from run_once()
    else:
        yield from run_once()
