"""AST node definitions for the ALPS surface syntax."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# -- expressions ---------------------------------------------------------


@dataclass
class Num:
    value: int


@dataclass
class Str:
    value: str


@dataclass
class Bool:
    value: bool


@dataclass
class Nil:
    pass


@dataclass
class Var:
    name: str


@dataclass
class Index:
    base: Any
    index: Any


@dataclass
class Field:
    base: Any
    name: str


@dataclass
class Pending:
    """``#P`` — the pending-call count of procedure P (§2.5.1)."""

    proc: str


@dataclass
class Unary:
    op: str
    operand: Any


@dataclass
class Binary:
    op: str
    left: Any
    right: Any


@dataclass
class CallExpr:
    """``X.P(args)`` or ``P(args)`` used as an expression (entry call /
    local call / builtin)."""

    target: Any          # None for bare names, else object expression
    name: str
    args: list = field(default_factory=list)


# -- statements ----------------------------------------------------------


@dataclass
class Assign:
    targets: list        # lvalues (Var/Index/Field); multi-target for calls
    value: Any


@dataclass
class If:
    arms: list           # [(cond, body), ...]
    orelse: list


@dataclass
class While:
    cond: Any
    body: list


@dataclass
class CallStmt:
    call: CallExpr


@dataclass
class SendStmt:
    channel: Any
    values: list


@dataclass
class ReceiveStmt:
    channel: Any
    targets: list


@dataclass
class ReturnStmt:
    values: list


@dataclass
class WorkStmt:
    """``work(E)`` — consume E ticks of simulated CPU (Charge)."""

    amount: Any


@dataclass
class SkipStmt:
    pass


@dataclass
class AcceptStmt:
    proc: str
    slot_var: str | None   # bound loop variable, informational
    params: list            # names receiving intercepted params
    bind: str | None        # variable that receives the call handle


@dataclass
class StartStmt:
    proc: str
    call_var: str | None    # call-handle variable; None = "the current call"
    hidden: list            # hidden parameter expressions


@dataclass
class AwaitStmt:
    proc: str
    results: list           # names receiving intercepted results
    bind: str | None


@dataclass
class FinishStmt:
    proc: str
    call_var: str | None
    results: list           # expressions for intercepted results


@dataclass
class ExecuteStmt:
    proc: str
    call_var: str | None
    hidden: list


# -- guards and select/loop ----------------------------------------------


@dataclass
class GuardClause:
    """One guarded alternative: quantifier? primitive when? pri? => body."""

    kind: str               # 'accept' | 'await' | 'receive' | 'when'
    proc: str | None        # for accept/await
    channel: Any            # for receive
    binders: list           # names bound from params/results/message
    bind: str | None        # call-handle variable for accept/await
    when: Any               # condition expression or None
    pri: Any                # priority expression or None
    body: list


@dataclass
class SelectStmt:
    clauses: list
    repetitive: bool        # loop vs select


# -- declarations ---------------------------------------------------------


@dataclass
class ProcSig:
    name: str
    params: list            # parameter names (definition part)
    returns: int


@dataclass
class ObjectDef:
    name: str
    procs: list             # [ProcSig]


@dataclass
class ProcImpl:
    name: str
    array: Any              # None | int | Var(name) — upper bound of [1..N]
    params: list            # all parameter names (incl. hidden)
    returns: int            # total results (incl. hidden)
    body: list
    locals_: list = field(default_factory=list)   # [(name, initial-expr)]


@dataclass
class InterceptClause:
    proc: str
    params: int
    results: int


@dataclass
class ManagerDecl:
    intercepts: list        # [InterceptClause]
    variables: list         # [(name, initial)]
    body: list


@dataclass
class VarDecl:
    names: list
    type_name: str | None
    initial: Any            # expression or None


@dataclass
class ObjectImpl:
    name: str
    variables: list         # [VarDecl]
    procs: list             # [ProcImpl]
    manager: ManagerDecl | None
    init: list              # initialization statements


@dataclass
class Program:
    definitions: dict       # name -> ObjectDef
    implementations: dict   # name -> ObjectImpl
