"""Compile parsed ALPS programs onto the :mod:`repro.core` runtime.

``compile_program(source)`` returns a :class:`Module`; instantiating an
object binds it to a kernel::

    module = compile_program(BUFFER_SOURCE)
    buffer = module.instantiate(kernel, "Buffer", N=4)

Each compiled object is a genuine :class:`~repro.core.AlpsObject`
subclass: entry procedures become interpreted generator bodies, the
manager becomes an interpreted daemon process, and all of the runtime's
machinery — hidden procedure arrays, intercepts, pools, combining,
remote placement — applies unchanged.
"""

from __future__ import annotations

from typing import Any

from ..core.entry import EntrySpec, Intercept
from ..core.manager import ManagerSpec
from ..core.object_model import AlpsObject, AlpsObjectMeta
from ..errors import ObjectModelError
from . import ast
from .interp import Env, LangRuntimeError, ManagerState, _Return, eval_expr, exec_stmts
from .parser import parse_program


class Module:
    """A compiled ALPS program: object classes plus a live-instance registry.

    Bare names in interpreted code resolve locals → object attributes →
    this registry, so objects can call each other by their declared names
    (the paper's ``use`` clause).
    """

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.classes: dict[str, type] = {}
        self.instances: dict[str, AlpsObject] = {}
        for name, impl in program.implementations.items():
            definition = program.definitions.get(name)
            self.classes[name] = _build_class(self, name, definition, impl)

    def instantiate(self, kernel, name: str, alps_name: str | None = None, **config: Any) -> AlpsObject:
        """Create the single instance of object ``name`` (§2.2)."""
        cls = self.classes.get(name)
        if cls is None:
            raise ObjectModelError(
                f"program has no implementation for object {name!r} "
                f"(has: {sorted(self.classes)})"
            )
        obj = cls(kernel, name=alps_name or name, **config)
        self.instances[name] = obj
        return obj

    def __getitem__(self, name: str) -> AlpsObject:
        return self.instances[name]


def compile_program(source: str) -> Module:
    """Parse and compile ALPS source text into a :class:`Module`."""
    return Module(parse_program(source))


# ----------------------------------------------------------------------
# Class synthesis
# ----------------------------------------------------------------------


def _build_class(
    module: Module,
    name: str,
    definition: ast.ObjectDef | None,
    impl: ast.ObjectImpl,
) -> type:
    def_sigs = {sig.name: sig for sig in definition.procs} if definition else {}

    namespace: dict[str, Any] = {}
    for proc in impl.procs:
        namespace[proc.name] = _build_entry_spec(module, proc, def_sigs.get(proc.name))
    if impl.manager is not None:
        namespace["mgr"] = _build_manager_spec(module, impl.manager)
    namespace["setup"] = _build_setup(module, impl)
    namespace["__doc__"] = f"Compiled ALPS object {name!r}."
    namespace["__alps_module__"] = module
    return AlpsObjectMeta(name, (AlpsObject,), namespace)


def _build_entry_spec(
    module: Module, proc: ast.ProcImpl, signature: ast.ProcSig | None
) -> EntrySpec:
    total_params = len(proc.params)
    total_returns = proc.returns
    if signature is not None:
        hidden_params = total_params - len(signature.params)
        hidden_results = total_returns - signature.returns
        if hidden_params < 0:
            raise ObjectModelError(
                f"{proc.name}: implementation has fewer parameters than "
                f"the definition"
            )
        if hidden_results < 0:
            raise ObjectModelError(
                f"{proc.name}: implementation returns fewer results than "
                f"the definition"
            )
        exported = True
    else:
        hidden_params = 0
        hidden_results = 0
        exported = False  # not in the definition part: a local procedure

    body_fn = _make_body_function(module, proc)

    array: Any = None
    if proc.array is not None:
        array = proc.array.name if isinstance(proc.array, ast.Var) else proc.array

    spec = EntrySpec(
        body_fn,
        returns=total_returns - hidden_results,
        array=array,
        hidden_params=hidden_params,
        hidden_results=hidden_results,
        exported=exported,
    )
    return spec


def _make_body_function(module: Module, proc: ast.ProcImpl):
    """Synthesize a generator function with the exact formal signature."""
    params = proc.params
    arglist = ", ".join(["self"] + list(params))
    binds = ", ".join(f"{p!r}: {p}" for p in params)
    source = (
        f"def {proc.name}({arglist}):\n"
        f"    result = yield from _run_body(self, _proc_ast, {{{binds}}}, _module)\n"
        f"    return result\n"
    )
    scope = {"_run_body": _run_body, "_proc_ast": proc, "_module": module}
    exec(source, scope)  # noqa: S102 - controlled codegen for signatures
    return scope[proc.name]


def _run_body(obj: AlpsObject, proc: ast.ProcImpl, locals_: dict, module: Module):
    env = Env(obj, module, dict(locals_))
    for var_name, initial in proc.locals_:
        env.locals[var_name] = (
            eval_expr(env, initial) if initial is not None else None
        )
    try:
        yield from exec_stmts(env, proc.body, mgr=None)
    except _Return as ret:
        values = ret.values
        if len(values) == 0:
            return None
        if len(values) == 1:
            return values[0]
        return tuple(values)
    # Implicit return for procedures that fall off the end.
    if proc.returns:
        raise LangRuntimeError(
            f"{proc.name}: body ended without returning its "
            f"{proc.returns} result(s)"
        )
    return None


def _build_manager_spec(module: Module, decl: ast.ManagerDecl) -> ManagerSpec:
    intercepts = {
        clause.proc: Intercept(params=clause.params, results=clause.results)
        for clause in decl.intercepts
    }

    def mgr(self):
        locals_ = {}
        env = Env(self, module, locals_)
        for name, initial in decl.variables:
            locals_[name] = eval_expr(env, initial) if initial is not None else None
        state = ManagerState()
        yield from exec_stmts(env, decl.body, mgr=state)

    mgr.__name__ = "mgr"
    return ManagerSpec(mgr, intercepts=intercepts)


def _build_setup(module: Module, impl: ast.ObjectImpl):
    def setup(self, **config: Any) -> None:
        # Configuration overrides arrive first so declared initializers
        # (which may reference them, e.g. 'var Buf := array(N)') see the
        # overridden values.
        for key, value in config.items():
            setattr(self, key, value)
        env = Env(self, module, {})
        for decl in impl.variables:
            for name in decl.names:
                if name in config:
                    continue
                value = eval_expr(env, decl.initial) if decl.initial is not None else None
                setattr(self, name, value)
        # The object's initialization code runs before the manager (§2.3).
        if impl.init:
            self.kernel.spawn(
                lambda: exec_stmts(Env(self, module, {}), impl.init, mgr=None),
                name=f"{self.alps_name}.init",
            )

    return setup
