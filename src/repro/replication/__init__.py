"""Replicated ALPS objects: primary/backup with automatic failover.

The paper's availability story (§4 sketches recovery of ALPS objects
from node failures) ends at restart-in-place; this package adds the
natural next step — run N copies of an object on distinct nodes and let
a wrapper route calls so callers never see a single replica's crash.
See :mod:`repro.replication.replicated` for the semantics.
"""

from .log import WriteLog
from .replicated import Replicated, place_replicated
from .view import ReplicaView

__all__ = [
    "Replicated",
    "ReplicaView",
    "WriteLog",
    "place_replicated",
]
