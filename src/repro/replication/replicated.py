"""``Replicated`` — first-class primary/backup replication for ALPS objects.

PR 1 left failover to every caller (``examples/failover.py`` hand-rolled
retry → fall back → Supervisor).  ``Replicated`` makes that pattern a
library object::

    rep = Replicated(
        lambda name: KVStore(kernel, name=name),
        net, replicas=3, writes=("put", "delete"),
    )
    ...
    value = yield from rep.get("alps")          # read: primary, else backup
    yield from rep.put("alps", "a language")    # write: primary → backups

The wrapper places one primary plus ``replicas - 1`` backups on distinct
nodes (fault-aware: :func:`repro.net.choose_nodes`), and builds a small
control plane of unplaced daemons — modelling the replication middleware
that real systems run outside any single replica:

* a **write sequencer** funnels every write through one process, stamps
  it with the next version number, applies it to the primary (retrying,
  and electing a new primary on :class:`~repro.errors.RemoteCallError`),
  forwards it to every live backup, and only then acknowledges the
  caller — so replicas apply writes in one global order (deterministic
  convergence) and an acknowledged write survives the loss of any one
  replica;
* a **view monitor** sleeps on the heartbeat's and fault runtime's event
  streams, folds ping verdicts into the :class:`ReplicaView`, promotes
  the highest-version live backup when the primary dies, and catches a
  returning replica up (write-log replay, or a full state snapshot from
  the best live donor when the log has been pruned) before it rejoins as
  a backup;
* a **heartbeat** pings every replica (its own ``ping`` entry when it has
  one, a co-located :class:`~repro.faults.Beacon` otherwise).

Reads go to the primary with timed calls + retry and fail over to live
backups transparently; a read served by a backup may be *stale* by the
backup's version lag (recorded for the benchmarks).

Semantics: writes are **at-least-once** (a retry or re-queue can re-apply
a body), so write entries should be idempotent — last-writer-wins
updates like ``KVStore.put`` qualify.  Acknowledged writes are ordered
by version and survive any single replica loss: the promotion rule
(highest version wins) plus forward-before-ack plus log/snapshot
catch-up guarantee the new primary holds every acknowledged write.

With a :class:`~repro.stdlib.Supervisor`, crashed replicas restart under
supervision (interrupted calls re-queued); without one, the view monitor
restarts them itself once their node returns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..channels import Channel, Receive, Send
from ..errors import RemoteCallError, ReplicationError
from ..faults.detect import Beacon, Heartbeat, HeartbeatEventGuard
from ..faults.retry import FixedBackoff, RetryPolicy, retry
from ..faults.runtime import FaultEventGuard
from ..kernel.syscalls import Delay, Select
from ..net.placement import choose_nodes
from .log import WriteLog
from .view import ReplicaView, ViewEventGuard

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.process import Process
    from ..net.network import Network, Node
    from ..stdlib.supervisor import Supervisor

#: Default client-facing retry (reads and primary writes).
DEFAULT_RETRY = FixedBackoff(delay=20, max_attempts=2)
#: Default replica-to-replica retry (forwarding, catch-up replay).
DEFAULT_FORWARD = FixedBackoff(delay=10, max_attempts=3)


def place_replicated(
    factory: Callable[[str], Any],
    net: "Network",
    count: int,
    *,
    name: str = "rep",
    heartbeat: Heartbeat | None = None,
    avoid: Iterable[str] = (),
) -> list[Any]:
    """Fault-aware placement without the full wrapper.

    Creates ``count`` instances via ``factory(name.r<i>)`` and places
    them on distinct nodes chosen by :func:`repro.net.choose_nodes`
    (down-believed nodes last, lightly loaded first).  Use this for
    replica sets you coordinate yourself, or for pool growth that should
    steer away from flaky nodes.
    """
    nodes = choose_nodes(net, count, heartbeat=heartbeat, avoid=avoid)
    placed = []
    for index, node in enumerate(nodes):
        rname = f"{name}.r{index}"
        obj = factory(rname)
        _check_factory_name(obj, rname)
        node.place(obj)
        placed.append(obj)
    return placed


def _check_factory_name(obj: Any, rname: str) -> None:
    if getattr(obj, "alps_name", None) != rname:
        raise ReplicationError(
            f"replica factory must pass the given name through: expected "
            f"{rname!r}, got {getattr(obj, 'alps_name', None)!r}"
        )


class _ReplicatedEntry:
    """``rep.get`` — calling it returns the proxy generator to yield from."""

    __slots__ = ("rep", "name")

    def __init__(self, rep: "Replicated", name: str) -> None:
        self.rep = rep
        self.name = name

    def __call__(self, *args: Any, timeout: int | None = None):
        return self.rep.invoke(self.name, args, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<replicated entry {self.rep.name}.{self.name}>"


class Replicated:
    """A replicated ALPS object: place once, call through, forget faults.

    Parameters
    ----------
    factory:
        ``factory(name) -> AlpsObject``; called once per replica with the
        replica's name (which it must pass through to the object).
        Install the fault plan and create the Supervisor *before*
        constructing the wrapper.
    replicas:
        Total copies including the primary.  ``1`` gives the unreplicated
        baseline: no backups, failover impossible.
    writes:
        Entry names that mutate shared data; they are sequenced and
        forwarded to every replica.  Everything else exported is a read.
    nodes:
        Explicit distinct placement (names or nodes) overriding the
        fault-aware choice; ``avoid`` excludes nodes from the automatic
        choice (e.g. the Supervisor's home).
    supervisor:
        Optional :class:`~repro.stdlib.Supervisor`; when given it watches
        every replica (and beacon) so interrupted calls are re-queued.
        Without one the view monitor restarts crashed replicas itself.
    log_limit:
        Bound on the write log; a replica behind the pruned prefix is
        repaired by a full state snapshot instead of replay.
    snapshot_cost:
        Virtual-time multiplier over one network hop for a snapshot
        transfer (a snapshot is heavier than one message).
    """

    def __init__(
        self,
        factory: Callable[[str], Any],
        net: "Network",
        replicas: int = 2,
        *,
        name: str = "rep",
        writes: Iterable[str] = (),
        call_timeout: int = 60,
        retry_policy: RetryPolicy | None = None,
        forward_policy: RetryPolicy | None = None,
        heartbeat_interval: int = 40,
        heartbeat_timeout: int | None = None,
        heartbeat_rounds: int | None = None,
        supervisor: "Supervisor | None" = None,
        nodes: Iterable[Any] | None = None,
        avoid: Iterable[str] = (),
        log_limit: int | None = None,
        snapshot_cost: int = 4,
        seed: int = 0,
    ) -> None:
        if replicas < 1:
            raise ReplicationError(f"replicas must be >= 1, got {replicas}")
        self.net = net
        self.kernel = net.kernel
        self.name = name
        self.writes = frozenset(writes)
        self.call_timeout = call_timeout
        self.retry_policy = retry_policy or DEFAULT_RETRY
        self.forward_policy = forward_policy or DEFAULT_FORWARD
        self.snapshot_cost = snapshot_cost
        self.supervisor = supervisor
        #: The installed fault runtime, if any (install the plan first).
        self.faults = self.kernel.faults
        self.seed = seed
        self._seq = 0
        #: Version lag observed by each read a backup served.
        self._staleness: list[int] = []

        metrics = self.kernel.metrics
        self.c_reads = metrics.counter(
            "replication.reads", "Reads served by any replica",
            legacy="replicated_reads",
        )
        self.c_failovers = metrics.counter(
            "replication.failovers", "Reads failed over to a backup",
            legacy="replication_failovers",
        )
        self.c_writes = metrics.counter(
            "replication.writes", "Writes acknowledged by the sequencer",
            legacy="replicated_writes",
        )
        self.c_write_failures = metrics.counter(
            "replication.write_failures",
            "Writes failed after exhausting every replica",
            legacy="replication_write_failures",
        )
        self.c_restarts = metrics.counter(
            "replication.restarts", "Replicas self-restarted by the view monitor",
            legacy="replication_restarts",
        )
        self.c_catchup_writes = metrics.counter(
            "replication.catchup_writes", "Writes replayed during catch-up",
            legacy="replication_catchup_writes",
        )
        self.c_snapshots = metrics.counter(
            "replication.snapshots", "Full state transfers between replicas",
            legacy="replication_snapshots",
        )

        # -- placement: one replica per distinct node ----------------------
        if nodes is not None:
            chosen: list["Node"] = [
                net.node(n) if isinstance(n, str) else n for n in nodes
            ]
            if len(chosen) != replicas:
                raise ReplicationError(
                    f"nodes gives {len(chosen)} placements for {replicas} replicas"
                )
            if len({n.name for n in chosen}) != len(chosen):
                raise ReplicationError(
                    "replicas must not be co-located on one node"
                )
        else:
            chosen = choose_nodes(net, replicas, avoid=avoid)

        self._objects: dict[str, Any] = {}
        self._nodes: dict[str, "Node"] = {}
        self._beacons: dict[str, Any] = {}
        names: list[str] = []
        for index, node in enumerate(chosen):
            rname = f"{name}.r{index}"
            obj = factory(rname)
            _check_factory_name(obj, rname)
            node.place(obj)
            self._objects[rname] = obj
            self._nodes[rname] = node
            names.append(rname)

        prototype = self._objects[names[0]]
        self._entries = frozenset(prototype.exported_entries())
        unknown = self.writes - self._entries
        if unknown:
            raise ReplicationError(
                f"{name}: writes name unknown entries {sorted(unknown)} "
                f"(exported: {sorted(self._entries)})"
            )

        self.view = ReplicaView(self.kernel, names)
        self.log = WriteLog(log_limit)

        # -- failure detection: heartbeat per replica ----------------------
        self.heartbeat = Heartbeat(
            self.kernel,
            interval=heartbeat_interval,
            timeout=(
                heartbeat_timeout if heartbeat_timeout is not None else call_timeout
            ),
            rounds=heartbeat_rounds,
        )
        for rname in names:
            if "ping" in self._entries:
                target = self._objects[rname]
            else:
                target = self._nodes[rname].place(
                    Beacon(self.kernel, name=f"{rname}.beacon")
                )
                self._beacons[rname] = target
            self.heartbeat.watch(rname, target)

        if supervisor is not None:
            for rname in names:
                supervisor.watch(self._objects[rname])
                beacon = self._beacons.get(rname)
                if beacon is not None:
                    supervisor.watch(beacon)

        # -- control plane (unplaced daemons: the middleware layer) --------
        self._write_queue = Channel(name=f"{name}.writes")
        self._sequencer_proc: "Process" = self.kernel.spawn(
            self._sequencer, name=f"{name}.sequencer", daemon=True
        )
        self._monitor_proc: "Process" = self.kernel.spawn(
            self._view_monitor, name=f"{name}.monitor", daemon=True
        )
        self.heartbeat.start()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self.__dict__.get("_entries", ()):
            return _ReplicatedEntry(self, name)
        raise AttributeError(
            f"{type(self).__name__} {self.__dict__.get('name', '?')!r} has no "
            f"entry or attribute {name!r}"
        )

    def replica(self, rname: str) -> Any:
        return self._objects[rname]

    def replicas(self) -> list[Any]:
        return [self._objects[n] for n in self.view.order]

    def primary_object(self) -> Any:
        return self._objects[self.view.primary]

    def node_of(self, rname: str) -> str:
        return self._nodes[rname].name

    def primary_node(self) -> str:
        return self.node_of(self.view.primary)

    def staleness(self) -> list[int]:
        """Version lag of every read a backup served, in read order."""
        return list(self._staleness)

    def stop(self) -> None:
        """Halt the control plane (heartbeat, monitor, sequencer).

        Lets an open-ended ``kernel.run()`` reach quiescence.  Reads keep
        working (without new failure detection); writes submitted after
        the stop are never acknowledged.
        """
        self.heartbeat.stop()
        for proc in (self._monitor_proc, self._sequencer_proc):
            if proc is not None and proc.alive:
                self.kernel.kill_process(proc)

    def describe(self) -> str:
        placement = ", ".join(
            f"{n}@{self._nodes[n].name}" + ("*" if n == self.view.primary else "")
            for n in self.view.order
        )
        return f"replicated {self.name} v{self.view.version} [{placement}]"

    def _next_seed(self) -> int:
        """Per-attempt retry seed: deterministic, decorrelated in event order."""
        self._seq += 1
        return self.seed * 1_000_003 + self._seq

    # ------------------------------------------------------------------
    # Client-facing call proxy
    # ------------------------------------------------------------------

    def invoke(self, entry: str, args: tuple, timeout: int | None = None):
        """Proxy one call; use as ``result = yield from rep.invoke(...)``.

        (Attribute sugar ``yield from rep.get(key)`` builds exactly this.
        Use ``invoke`` directly for entries shadowed by wrapper
        attributes.)
        """
        if entry not in self._entries:
            raise ReplicationError(
                f"{self.name} has no exported entry {entry!r} "
                f"(has: {sorted(self._entries)})"
            )
        timeout = self.call_timeout if timeout is None else timeout
        if entry in self.writes:
            return self._write(entry, tuple(args), timeout)
        return self._read(entry, tuple(args), timeout)

    def _read(self, entry: str, args: tuple, timeout: int):
        """Primary first, then live backups, then down-marked stragglers."""
        primary = self.view.primary
        candidates = [primary]
        candidates += [n for n in self.view.order if self.view.is_up(n) and n != primary]
        candidates += [n for n in self.view.order if not self.view.is_up(n) and n != primary]
        last_exc: RemoteCallError | None = None
        for rname in candidates:
            obj = self._objects[rname]
            try:
                result = yield from retry(
                    lambda o=obj: getattr(o, entry)(*args, timeout=timeout),
                    self.retry_policy,
                    seed=self._next_seed(),
                )
            except RemoteCallError as exc:
                last_exc = exc
                self.view.mark_down(rname)
                continue
            self.c_reads.inc()
            if rname != primary:
                self.c_failovers.inc()
                self._staleness.append(self.view.lag(rname))
            return result
        raise RemoteCallError(
            f"{self.name}.{entry}: all {len(candidates)} replicas unreachable",
            entry=entry,
            obj=self.name,
        ) from last_exc

    def _write(self, entry: str, args: tuple, timeout: int):
        """Submit to the sequencer; block until acknowledged (or failed)."""
        obs = self.kernel.obs
        span = None
        if obs.enabled:
            # Root of the per-write span tree: client submit → sequencer
            # (via the queued span id) → per-replica entry calls → ack.
            client = self.kernel.current_process
            span = obs.begin(
                "replicated", f"{self.name}.{entry}",
                process=client.name, parent=client.span,
            )
        reply = Channel(name=f"{self.name}.ack")
        sid = None if span is None else span.span_id
        yield Send(self._write_queue, (entry, args, timeout, reply, sid))
        status, payload = yield Receive(reply)
        if span is not None:
            obs.end(span, status=status)
        if status == "error":
            raise payload
        return payload

    # ------------------------------------------------------------------
    # Write sequencer: one global order for every mutation
    # ------------------------------------------------------------------

    def _sequencer(self):
        obs = self.kernel.obs
        while True:
            entry, args, timeout, reply, parent = yield Receive(self._write_queue)
            span = None
            if obs.enabled:
                # The sequencer span parents on the client's write span
                # and, through the process span link, adopts the primary
                # apply and backup forward calls as children.
                span = obs.begin(
                    "replication", f"{self.name}.{entry}.sequence",
                    process=self._sequencer_proc.name, parent=parent,
                )
                self._sequencer_proc.span = span
            try:
                result = yield from self._apply_write(entry, args, timeout)
            except (RemoteCallError, ReplicationError) as exc:
                self.c_write_failures.inc()
                if span is not None:
                    obs.end(span, status="error")
                    self._sequencer_proc.span = None
                yield Send(reply, ("error", exc))
            else:
                if span is not None:
                    obs.end(span, status="ok", version=self.view.version)
                    self._sequencer_proc.span = None
                yield Send(reply, ("ok", result))

    def _apply_write(self, entry: str, args: tuple, timeout: int):
        span = self._sequencer_proc.span
        version = self.view.version + 1
        tried = 0
        while True:
            primary = self.view.primary
            obj = self._objects[primary]
            try:
                result = yield from retry(
                    lambda o=obj: getattr(o, entry)(*args, timeout=timeout),
                    self.retry_policy,
                    seed=self._next_seed(),
                )
                break
            except RemoteCallError:
                self.view.mark_down(primary, span=span)
                tried += 1
                if tried >= len(self.view.order):
                    raise
                promoted = yield from self._elect(span)
                if promoted is None:
                    raise
        if span is not None:
            # Phase tags for the trace analyzer: the child call span named
            # after the primary is the sequenced apply, every other child
            # is a forward (repro.obs.analyze classifies on these).
            span.attrs["primary"] = obj.alps_name
        self.view.mark_applied(primary, version)
        self.log.append(version, entry, args)
        self.view.commit(version)
        self.c_writes.inc()
        self.kernel.trace.record(
            self.kernel.clock.now, "replicate", self.name,
            entry=entry, version=version, primary=primary,
        )
        # Forward to every live backup *before* acknowledging: an acked
        # write then survives the loss of any one replica.
        forwards: list[str] = []
        for rname in self.view.live_backups():
            backup = self._objects[rname]
            forwards.append(backup.alps_name)
            try:
                yield from retry(
                    lambda b=backup: getattr(b, entry)(*args, timeout=timeout),
                    self.forward_policy,
                    seed=self._next_seed(),
                )
            except RemoteCallError:
                # Stale from here on; it catches up when it rejoins.
                self.view.mark_down(rname, span=span)
            else:
                self.view.mark_applied(rname, version)
        if span is not None and forwards:
            span.attrs["forwards"] = forwards
        return result

    def _elect(self, span=None):
        """Promote (and catch up) a new primary; None when none is live."""
        promoted = self.view.promote(span=span)
        if promoted is None:
            return None
        if self.view.lag(promoted):
            yield from self._catch_up(promoted)
        return promoted

    # ------------------------------------------------------------------
    # View monitor: verdicts -> membership, promotion, catch-up
    # ------------------------------------------------------------------

    def _view_monitor(self):
        obs = self.kernel.obs
        hb_seen = 0
        fault_seen = 0
        view_seen = 0
        while True:
            guards = [
                HeartbeatEventGuard(self.heartbeat, hb_seen),
                # A failed call marking a replica down wakes us too, so a
                # false suspicion is repaired (or a real primary death
                # promoted) without waiting for a ping verdict to change.
                ViewEventGuard(self.view, view_seen),
            ]
            if self.faults is not None:
                guards.append(FaultEventGuard(self.faults, fault_seen))
            yield Select(*guards)
            hb_seen = self.heartbeat.event_count
            view_seen = self.view.change_count
            if self.faults is not None:
                fault_seen = self.faults.event_count
            span = None
            if obs.enabled:
                # Parent on the probe that raised the latest verdict, so
                # the exported timeline reads detection → promotion →
                # catch-up as one connected tree.
                parent = None
                if self.heartbeat.transitions:
                    parent = getattr(
                        self.heartbeat.transitions[-1], "span_id", None
                    )
                span = obs.begin(
                    "replication", f"{self.name}.reconcile",
                    process=self._monitor_proc.name, parent=parent,
                )
                self._monitor_proc.span = span
            yield from self._reconcile(span)
            if span is not None:
                obs.end(span, primary=self.view.primary)
                self._monitor_proc.span = None

    def _reconcile(self, span=None):
        # 1. Self-restart (no Supervisor): bring crashed replicas back
        #    once their node is up; with a Supervisor, restarts are its
        #    job (and it re-queues interrupted calls as well).
        if self.supervisor is None and self.faults is not None:
            for rname, obj in self._objects.items():
                if not self.faults.node_up(self._nodes[rname].name):
                    continue
                if obj._crashed:
                    obj.restart()
                    self.c_restarts.inc()
                beacon = self._beacons.get(rname)
                if beacon is not None and beacon._crashed:
                    beacon.restart()
        # 2. Fold ping verdicts into the view; a returning replica is
        #    caught up (replay or snapshot) before it rejoins as backup.
        for rname in self.view.order:
            verdict = self.heartbeat.status.get(rname)
            if verdict == "down":
                self.view.mark_down(rname, span=span)
            elif verdict == "up" and not self.view.is_up(rname):
                try:
                    yield from self._catch_up(rname)
                except (RemoteCallError, ReplicationError):
                    continue  # still unreachable; retry on the next event
                self.view.mark_up(rname, span=span)
        # 3. Leadership: a dead primary cedes to the best live backup.
        if not self.view.is_up(self.view.primary):
            promoted = self.view.promote(span=span)
            if promoted is not None and self.view.lag(promoted):
                try:
                    yield from self._catch_up(promoted)
                except (RemoteCallError, ReplicationError):
                    pass  # the write path re-elects if it is really gone

    # ------------------------------------------------------------------
    # Catch-up: log replay, escalating to state transfer
    # ------------------------------------------------------------------

    def _catch_up(self, rname: str):
        """Bring ``rname`` to the acknowledged version (replay/snapshot).

        Raises :class:`~repro.errors.RemoteCallError` when the replica is
        unreachable and :class:`~repro.errors.ReplicationError` when no
        repair path exists; returns only once the replica holds every
        acknowledged write (checked atomically before returning, so the
        caller can mark it up without a race against new writes).
        """
        obj = self._objects[rname]
        snapshotted = False
        while True:
            missing = self.log.since(self.view.versions[rname])
            if missing is None:
                if snapshotted:
                    raise ReplicationError(
                        f"{self.name}: {rname} is behind the pruned log even "
                        f"after a snapshot"
                    )
                yield from self._snapshot_transfer(rname)
                snapshotted = True
                continue
            if not missing:
                return
            for version, entry, args in missing:
                yield from retry(
                    lambda o=obj, e=entry, a=args: getattr(o, e)(
                        *a, timeout=self.call_timeout
                    ),
                    self.forward_policy,
                    seed=self._next_seed(),
                )
                self.view.mark_applied(rname, version)
                self.c_catchup_writes.inc()

    def _snapshot_transfer(self, rname: str):
        """Full state copy from the best live donor (log replay impossible)."""
        donors = [
            n
            for n in self.view.live()
            if n != rname and self.view.versions[n] > self.view.versions[rname]
        ]
        if not donors:
            raise ReplicationError(
                f"{self.name}: no live donor for a state transfer to {rname}"
            )
        donor = max(
            donors, key=lambda n: (self.view.versions[n], -self.view.order.index(n))
        )
        donor_version = self.view.versions[donor]
        snapshot = self._objects[donor].state_snapshot()
        latency = self.net.latency_or_none(self._nodes[donor], self._nodes[rname])
        if latency is None:
            raise RemoteCallError(
                f"no route for state transfer {donor} -> {rname}", obj=self.name
            )
        cost = latency * self.snapshot_cost
        if cost:
            yield Delay(cost)
        self._objects[rname].state_restore(snapshot)
        self.view.mark_applied(rname, donor_version)
        self.c_snapshots.inc()
        self.kernel.trace.record(
            self.kernel.clock.now, "state_transfer", self.name,
            donor=donor, to=rname, version=donor_version,
        )
