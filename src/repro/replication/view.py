"""The replica view: who is up, who has applied what, who leads.

A :class:`ReplicaView` is the replication wrapper's membership and
progress table — the piece of Raft/primary-backup bookkeeping this
object layer needs.  It tracks, per replica:

* a liveness verdict (folded in from the heartbeat, from failed calls,
  and from the fault runtime's restart events);
* the highest write version the replica is known to have applied.

and globally the current ``primary`` and the highest *acknowledged*
write version.  Every status change and promotion is appended to
``transitions`` with its virtual tick, so two runs with the same seed
produce tick-identical view histories — the determinism contract the
test suite checks.

Promotion policy: when the primary is believed down, the live backup
with the highest applied version wins; ties break by placement order.
This is the classic "most up-to-date survivor" rule — because writes
are acknowledged only after being applied at every live backup, the
winner is guaranteed to hold every acknowledged write.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..kernel.waiting import Guard, Ready, Waitable
from ..obs.spans import TransitionRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class ViewEventGuard(Guard):
    """Ready when the view logged transitions beyond ``seen``.

    The monitor daemon selects on this alongside the heartbeat and fault
    event guards: a replica marked down by a *failed call* (not only by a
    ping) wakes the monitor immediately, so a false suspicion is repaired
    — or a real primary death promoted — without waiting for the next
    heartbeat verdict change.
    """

    def __init__(self, view: "ReplicaView", seen: int) -> None:
        self.view = view
        self.seen = seen

    def poll(self, kernel: "Kernel") -> Ready | None:
        count = self.view.change_count
        return Ready(count) if count > self.seen else None

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> int:
        return ready.value

    def waitables(self) -> Iterable[Waitable]:
        return (self.view.changes,)

    def describe(self) -> str:
        return f"view-events(>{self.seen})"


class ReplicaView:
    """Membership, per-replica progress and leadership for one object."""

    def __init__(self, kernel: "Kernel", names: list[str]) -> None:
        self.kernel = kernel
        #: Replica names in placement order (tie-break for promotion).
        self.order = list(names)
        #: Liveness verdict per replica: "up" | "down".
        self.status = {name: "up" for name in self.order}
        #: Highest write version each replica is known to have applied.
        self.versions = {name: 0 for name in self.order}
        #: The replica write calls are directed at.
        self.primary = self.order[0]
        #: Highest acknowledged write version.
        self.version = 0
        #: (tick, event, replica, version-at-event) per change; events are
        #: "down", "rejoin", "promote".  Each record compares equal to a
        #: plain 4-tuple but also carries the id of the span that observed
        #: the change (None with spans disabled), so exported failover
        #: timelines connect detection to promotion and catch-up.
        self.transitions: list[tuple[int, str, str, int]] = []
        #: Monotone transition count, and the waitable the view monitor
        #: blocks on to observe changes made by other processes.
        self.change_count = 0
        self.changes = Waitable()

    # -- queries ----------------------------------------------------------

    def is_up(self, name: str) -> bool:
        return self.status[name] == "up"

    def live(self) -> list[str]:
        return [name for name in self.order if self.status[name] == "up"]

    def live_backups(self) -> list[str]:
        return [name for name in self.live() if name != self.primary]

    def lag(self, name: str) -> int:
        """How many acknowledged writes ``name`` has not applied yet."""
        return self.version - self.versions[name]

    # -- mutations --------------------------------------------------------

    def _record(self, event: str, name: str, span_id: int | None = None) -> None:
        self.transitions.append(
            TransitionRecord(
                (self.kernel.clock.now, event, name, self.versions[name]),
                span_id=span_id,
            )
        )
        self.change_count += 1
        self.kernel.notify(self.changes)

    def _span_id(self, span) -> int | None:
        return None if span is None else getattr(span, "span_id", span)

    def mark_down(self, name: str, span=None) -> None:
        if self.status[name] == "down":
            return
        self.status[name] = "down"
        self._record("down", name, span_id=self._span_id(span))
        self.kernel.metrics.counter(
            "replication.suspicions", "Replicas marked down in the view",
            legacy="replication_suspicions",
        ).inc()

    def mark_up(self, name: str, span=None) -> None:
        if self.status[name] == "up":
            return
        self.status[name] = "up"
        self._record("rejoin", name, span_id=self._span_id(span))
        self.kernel.metrics.counter(
            "replication.rejoins", "Replicas rejoining the view after catch-up",
            legacy="replication_rejoins",
        ).inc()

    def mark_applied(self, name: str, version: int) -> None:
        if version > self.versions[name]:
            self.versions[name] = version

    def commit(self, version: int) -> None:
        """Acknowledge a write: versions up to ``version`` are durable."""
        if version > self.version:
            self.version = version

    def promote(self, span=None) -> str | None:
        """Re-elect if the primary is down; returns the primary, or None.

        Chooses the live backup with the highest applied version
        (placement order breaks ties).  A live primary is left in place;
        with no live replica at all, leadership is vacant and ``None``
        is returned.
        """
        if self.status[self.primary] == "up":
            return self.primary
        candidates = self.live()
        if not candidates:
            return None
        best = max(
            candidates,
            key=lambda n: (self.versions[n], -self.order.index(n)),
        )
        self.primary = best
        self._record("promote", best, span_id=self._span_id(span))
        self.kernel.metrics.counter(
            "replication.promotions", "Backups promoted to primary",
            legacy="replication_promotions",
        ).inc()
        return best
