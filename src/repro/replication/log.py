"""The versioned write log backing backup catch-up.

Every acknowledged write is appended as ``(version, entry, args)``.  A
replica that was down rejoins by replaying the suffix it missed; a
replica that fell behind a *pruned* prefix (``limit`` bounds the log)
cannot be repaired by replay and takes a full state snapshot from the
most up-to-date live replica instead — :meth:`since` returning ``None``
is the signal for that escalation.
"""

from __future__ import annotations

from typing import Any


class WriteLog:
    """Append-only, optionally bounded log of acknowledged writes."""

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"log limit must be >= 1, got {limit}")
        self.limit = limit
        #: (version, entry name, args) in version order.
        self.entries: list[tuple[int, str, tuple]] = []
        #: Highest version that has been pruned away (0 = nothing pruned).
        self.base = 0

    def __len__(self) -> int:
        return len(self.entries)

    def append(self, version: int, entry: str, args: tuple[Any, ...]) -> None:
        if self.entries and version <= self.entries[-1][0]:
            raise ValueError(
                f"log versions must be monotone: {version} after "
                f"{self.entries[-1][0]}"
            )
        self.entries.append((version, entry, tuple(args)))
        if self.limit is not None and len(self.entries) > self.limit:
            dropped = len(self.entries) - self.limit
            self.base = self.entries[dropped - 1][0]
            del self.entries[:dropped]

    def since(self, version: int) -> list[tuple[int, str, tuple]] | None:
        """Writes with version > ``version``; None if that point is pruned.

        ``None`` means replay cannot reconstruct the replica's state and
        the caller must fall back to a full state transfer.
        """
        if version < self.base:
            return None
        return [e for e in self.entries if e[0] > version]
