"""Wire the live telemetry plane into a running traffic engine.

One call —

    watch_traffic(kernel.obs.live, engine, objective=0.99)

— and the plane aggregates, in virtual time while the run executes,
what the SLO harness (:mod:`repro.workloads.slo`) computes post-hoc:

* ``traffic.<name>.latency`` — sliding-window histogram of served
  latencies (finish − scheduled arrival, the harness's definition);
* ``traffic.<name>.ok`` / ``traffic.<name>.load`` — windowed+EWMA
  goodput and completion rates per kilotick;
* ``traffic.<name>.slo`` — a fast+slow burn-rate monitor where "bad"
  is any non-ok outcome, emitting the deterministic alert log E14/E15
  report next to the goodput knee;
* ``traffic.<name>.callers`` — a Space-Saving sketch of virtual caller
  IDs (pass ``key=`` to sketch an application key instead, e.g. the KV
  key a request touches).

Everything attaches through :attr:`TrafficEngine.observers` — a pure
synchronous callback on the outcome-recording path, no extra processes,
no syscalls — so the engine's schedule is identical with or without the
wire (asserted by the live-plane neutrality tests).
"""

from __future__ import annotations

from typing import Any, Callable

from ..obs.live import LivePlane
from .engine import Outcome, TrafficEngine

__all__ = ["watch_traffic"]


def watch_traffic(
    plane: LivePlane,
    engine: TrafficEngine,
    objective: float = 0.99,
    window: int | None = None,
    fast: int | None = None,
    slow: int | None = None,
    threshold: float = 2.0,
    clear: float = 1.0,
    key: Callable[[Outcome], Any] | None = None,
) -> dict[str, Any]:
    """Attach live aggregation to ``engine``; returns the aggregates.

    ``key`` extracts a sketch key from each outcome (default: the
    virtual caller ID).  The returned dict holds the bound aggregates
    (``latency``, ``ok``, ``load``, ``slo``, ``sketch_name``) for
    in-simulation reads — e.g. a daemon polling
    ``plane.hot_keys(wire["sketch_name"])``.
    """
    prefix = f"traffic.{engine.name}"
    latency = plane.histogram(f"{prefix}.latency", window)
    ok_rate = plane.rate(f"{prefix}.ok", window)
    load_rate = plane.rate(f"{prefix}.load", window)
    slo = plane.monitor(
        f"{prefix}.slo", objective, fast=fast, slow=slow,
        threshold=threshold, clear=clear,
    )
    sketch_name = f"{prefix}.callers"
    plane.sketch(sketch_name)

    def observe(outcome: Outcome) -> None:
        ok = outcome.status == "ok"
        load_rate.mark()
        slo.record(ok)
        if ok:
            latency.observe(outcome.latency)
            ok_rate.mark()
        plane.offer(
            sketch_name,
            outcome.request.caller if key is None else key(outcome),
        )

    engine.observers.append(observe)
    return {
        "latency": latency,
        "ok": ok_rate,
        "load": load_rate,
        "slo": slo,
        "sketch_name": sketch_name,
    }
