"""Zipf-distributed key popularity.

Benchmark E3 (dictionary combining) needs workloads where some words are
much more popular than others — the regime in which combining duplicate
searches pays off.  A Zipf distribution with exponent ``s`` over ``n``
items produces the classic skew: ``s=0`` is uniform (few duplicates,
combining useless), large ``s`` concentrates requests on a handful of
words (combining shines).  The crossover is the experiment.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator, Sequence


class Zipf:
    """Sampler over ``items`` with Zipf(s) popularity (rank 1 = first item)."""

    def __init__(self, items: Sequence, s: float = 1.0, seed: int = 0) -> None:
        if not items:
            raise ValueError("Zipf needs at least one item")
        if s < 0:
            raise ValueError(f"exponent must be >= 0, got {s}")
        self.items = list(items)
        self.s = s
        self.seed = seed
        weights = [1.0 / (rank ** s) for rank in range(1, len(self.items) + 1)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random):
        """One item drawn with Zipf weights."""
        point = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        return self.items[min(index, len(self.items) - 1)]

    def stream(self, count: int | None = None) -> Iterator:
        """A reproducible stream of samples (infinite if count is None)."""
        rng = random.Random(self.seed)
        if count is None:
            while True:
                yield self.sample(rng)
        else:
            for _ in range(count):
                yield self.sample(rng)

    def duplicate_fraction(self, count: int) -> float:
        """Fraction of a ``count``-sample stream that repeats an earlier key.

        A cheap a-priori measure of how much combining is available.
        """
        seen = set()
        duplicates = 0
        for item in self.stream(count):
            if item in seen:
                duplicates += 1
            else:
                seen.add(item)
        return duplicates / count if count else 0.0


def word_corpus(size: int) -> list[str]:
    """A deterministic corpus of ``size`` distinct pseudo-words."""
    consonants = "bcdfglmnprst"
    vowels = "aeiou"
    words = []
    index = 0
    while len(words) < size:
        i = index
        chars = []
        for position in range(4):
            if position % 2 == 0:
                chars.append(consonants[i % len(consonants)])
                i //= len(consonants)
            else:
                chars.append(vowels[i % len(vowels)])
                i //= len(vowels)
        words.append("".join(chars) + str(index // 3600))
        index += 1
    return words
