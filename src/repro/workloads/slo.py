"""SLO harness: percentiles, goodput curves, and the knee.

The traffic engine answers "what happened to each request"; this module
answers the question an operator asks of the whole run:

* **virtual-latency percentiles** — p50/p99/p999 of the ticks a served
  request took from its *scheduled arrival* (not its issue instant) to
  completion.  Nearest-rank definition, so every reported percentile is
  a latency some request actually experienced;
* **goodput vs offered load** — requests served OK per kilotick against
  requests offered per kilotick, plus the shed/timeout/dropped makeup of
  the gap.  The accounting is exact: the report refuses to build unless
  ``issued == ok + shed + timeout + dropped + error``;
* **the knee** — given one (offered, goodput) point per sweep step,
  :func:`find_knee` locates the step where the curve bends: the point
  with maximum perpendicular distance from the chord joining the curve's
  endpoints.  Below the knee the object keeps up; above it admission
  control (or collapse) takes over.  EXPERIMENTS.md E14 interprets it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..obs.live.stream import nearest_rank
from .engine import STATUSES, TrafficResult

#: Ticks per rate unit: loads and goodputs are per kilotick.
KILOTICK = 1000


def percentile(values: Sequence[int | float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (``p`` in [0, 100]).

    The nearest-rank definition returns an element of ``values`` (never
    an interpolation), so "p999 = 412 ticks" is always a latency some
    request actually saw.  Raises :class:`ValueError` on empty input.

    Delegates to :func:`repro.obs.live.stream.nearest_rank`, which
    computes ``rank = ceil(p·n/100)`` with exact rational arithmetic.
    The float ceiling this used to apply (``-(-p * n // 100)``) picked
    rank 162 instead of 161 for ``p=16.1, n=1000``: the exact product
    is the whole number 16100, but the binary float product overshoots
    it, so the ceiling rounds up one rank too far.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    return nearest_rank(values, p)


@dataclass
class SloReport:
    """One run of the traffic engine, reduced to its SLO numbers."""

    issued: int
    counts: dict[str, int]
    horizon: int  #: ticks from first scheduled arrival to last completion
    offered_per_ktick: float
    goodput_per_ktick: float
    p50: float | None
    p99: float | None
    p999: float | None
    mean_latency: float | None
    max_latency: int | None
    extra: dict = field(default_factory=dict)

    @property
    def served(self) -> int:
        return self.counts["ok"]

    @property
    def goodput_fraction(self) -> float:
        """Fraction of offered requests served OK."""
        return self.served / self.issued if self.issued else 0.0

    def to_row(self) -> dict:
        """Flat dict for benchmark tables and ``BENCH_E14.json`` rows."""
        row = {
            "issued": self.issued,
            "horizon": self.horizon,
            "offered_per_ktick": round(self.offered_per_ktick, 3),
            "goodput_per_ktick": round(self.goodput_per_ktick, 3),
            "goodput_fraction": round(self.goodput_fraction, 4),
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "mean_latency": (
                round(self.mean_latency, 2) if self.mean_latency is not None else None
            ),
            "max_latency": self.max_latency,
        }
        for status in STATUSES:
            row[status] = self.counts[status]
        row.update(self.extra)
        return row


def summarize(result: TrafficResult, horizon: int | None = None) -> SloReport:
    """Reduce a :class:`TrafficResult` to an :class:`SloReport`.

    ``horizon`` defaults to the span from the first scheduled arrival to
    the last recorded completion; pass an explicit experiment duration
    to compare sweep steps on equal footing.  Calls
    :meth:`~repro.workloads.engine.TrafficResult.check_conservation`
    first — a report over leaky accounting is worse than no report.
    """
    result.check_conservation()
    counts = result.counts
    if horizon is None:
        if result.outcomes:
            first = min(o.request.at for o in result.outcomes)
            last = max(o.finished_at for o in result.outcomes)
            horizon = max(1, last - first)
        else:
            horizon = 1
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    ok_latencies = result.latencies("ok")
    return SloReport(
        issued=result.issued,
        counts=counts,
        horizon=horizon,
        offered_per_ktick=result.issued * KILOTICK / horizon,
        goodput_per_ktick=counts["ok"] * KILOTICK / horizon,
        p50=percentile(ok_latencies, 50) if ok_latencies else None,
        p99=percentile(ok_latencies, 99) if ok_latencies else None,
        p999=percentile(ok_latencies, 99.9) if ok_latencies else None,
        mean_latency=(
            sum(ok_latencies) / len(ok_latencies) if ok_latencies else None
        ),
        max_latency=max(ok_latencies) if ok_latencies else None,
    )


def goodput_timeline(
    result: TrafficResult, window: int = KILOTICK
) -> list[tuple[int, float]]:
    """Goodput per ``window`` ticks across the run, for phase analysis.

    Returns ``(window_start, ok_per_ktick)`` pairs covering every window
    from the first scheduled arrival to the last completion — including
    empty windows, which report 0.0 (an outage is a gap in the timeline,
    not a gap in the data).  Completions are bucketed by *finish* time:
    the question is "what was the object delivering during this window",
    not "what was offered".  E15 uses this to compare goodput before a
    crash, during the outage, and after the heal.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if not result.outcomes:
        return []
    first = min(o.request.at for o in result.outcomes)
    last = max(o.finished_at for o in result.outcomes)
    buckets: dict[int, int] = {}
    for outcome in result.outcomes:
        if outcome.status != "ok":
            continue
        bucket = (outcome.finished_at - first) // window
        buckets[bucket] = buckets.get(bucket, 0) + 1
    n_windows = (last - first) // window + 1
    return [
        (first + i * window, buckets.get(i, 0) * KILOTICK / window)
        for i in range(n_windows)
    ]


def find_knee(points: Sequence[tuple[float, float]]) -> int:
    """Index of the knee of a goodput curve (max distance from the chord).

    ``points`` are (offered, goodput) pairs, one per sweep step; they are
    considered in order of offered load.  The knee is the point with the
    maximum perpendicular distance from the straight line joining the
    first and last points — the standard "kneedle" construction, which
    needs no smoothing for the short monotone sweeps E14 produces.  With
    fewer than three points (no interior to bend) the last index is
    returned: the curve never visibly saturated.
    """
    if not points:
        raise ValueError("find_knee of empty curve")
    order = sorted(range(len(points)), key=lambda i: (points[i][0], i))
    if len(points) < 3:
        return order[-1]
    x0, y0 = points[order[0]]
    x1, y1 = points[order[-1]]
    dx, dy = x1 - x0, y1 - y0
    norm = (dx * dx + dy * dy) ** 0.5
    if norm == 0:
        return order[-1]
    # Start at 0, not below it: on a perfectly straight curve no point
    # beats the chord and the last index is reported (nothing saturated).
    best_index = order[-1]
    best_distance = 0.0
    for i in order:
        x, y = points[i]
        distance = abs(dx * (y0 - y) - (x0 - x) * dy) / norm
        if distance > best_distance + 1e-12:
            best_distance = distance
            best_index = i
    return best_index
