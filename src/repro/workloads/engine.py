"""The open-loop traffic engine: many virtual callers, few processes.

An *open* system offers load at times the server does not control: a
million independent callers do not stop arriving because the object is
slow.  Simulating a million kernel processes would drown the scheduler
in bookkeeping that is not the experiment, so the engine multiplexes a
huge **logical caller ID space** over a small bounded pool of **engine
processes**:

* the complete request schedule — arrival times, caller IDs, per-caller
  sequence numbers — is computed *before the kernel runs*, from RNGs
  seeded independently of the kernel's arbitration seed.  Swapping a
  scheduling mechanism, an arbitration policy, or a manager's guard
  order therefore cannot perturb the offered load: two runs with the
  same engine seed see literally identical request sequences, and
  :meth:`TrafficEngine.write_offered_trace` can prove it byte-for-byte;
* each engine process owns a deterministic slice of the caller space
  (``caller % engines``) and replays its slice's arrivals with
  ``Delay``, spawning one short-lived client process per request;
* in-flight clients per engine are bounded (``clients``); an arrival
  that finds its engine saturated is recorded as ``dropped`` — counted,
  never silently discarded.

Every scheduled request ends in exactly one of five outcomes, so the
accounting is conservative by construction (checked by
:meth:`TrafficResult.check_conservation`):

========== ===========================================================
status     meaning
========== ===========================================================
``ok``     served; ``latency`` = finish time − scheduled arrival time
``shed``   the object's admission control rejected it
           (:class:`~repro.errors.AdmissionError`)
``timeout``the call expired or failed distributed-ly
           (:class:`~repro.errors.RemoteCallError`)
``dropped``the engine's client bound was exhausted at arrival time
``error``  any other exception (a bug in the driven object — the SLO
           harness treats a nonzero count as a failed run)
========== ===========================================================

Requests may take several *attempts* when the engine is configured with a
``retry_policy``: the conservation identity then extends to a second
dimension, ``attempts == Σ (1 + retries)`` over every non-dropped
outcome, so a retry storm cannot hide inside the accounting — every wire
attempt is attributed to exactly one terminal outcome.  A ``deadline``
gives every request an end-to-end budget anchored at its *scheduled*
arrival (``req.at + deadline``), inherited by every attempt, so retries
share one budget instead of each re-arming a fresh one.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..errors import AdmissionError, RemoteCallError
from ..faults.retry import CircuitBreaker, RetryBudget, RetryPolicy, retry
from ..kernel.syscalls import Delay, Now, Self, Spawn
from .generators import ArrivalProcess

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel

#: Outcome statuses, in reporting order.
STATUSES = ("ok", "shed", "timeout", "dropped", "error")


@dataclass(frozen=True)
class Request:
    """One scheduled request: fixed before the kernel ever runs."""

    index: int  #: global issue order
    at: int  #: scheduled arrival time (virtual ticks)
    caller: int  #: virtual caller ID in ``range(callers)``
    seq: int  #: per-caller sequence number (0, 1, ...)


@dataclass
class Outcome:
    """What actually happened to one scheduled request."""

    request: Request
    status: str
    issued_at: int
    finished_at: int
    value: Any = None
    retries: int = 0  #: wire re-attempts beyond the first (0 without retry)

    @property
    def latency(self) -> int:
        """Virtual latency a *caller* sees: finish − scheduled arrival.

        Measured from the scheduled arrival, not the issue instant, so a
        saturated engine cannot flatter the numbers by issuing late.
        """
        return self.finished_at - self.request.at


@dataclass
class TrafficResult:
    """Aggregated outcomes of one engine run."""

    issued: int
    outcomes: list[Outcome] = field(default_factory=list)
    #: Total wire attempts issued, or ``None`` when attempts were not
    #: tracked (hand-built results).  The engine always tracks them.
    attempts: int | None = None

    @property
    def counts(self) -> dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for outcome in self.outcomes:
            out[outcome.status] += 1
        return out

    def latencies(self, status: str = "ok") -> list[int]:
        return [o.latency for o in self.outcomes if o.status == status]

    def check_conservation(self) -> None:
        """``issued == ok + shed + timeout + dropped + error``, exactly.

        Raises :class:`AssertionError` naming the imbalance otherwise —
        a request the engine lost track of is a harness bug, not noise.

        When attempts were tracked (``attempts`` is not ``None``), the
        identity extends to the retry dimension: every wire attempt must
        be attributed to exactly one terminal outcome, i.e.
        ``attempts == Σ (1 + retries)`` over non-dropped outcomes
        (dropped requests never reached the wire).
        """
        counts = self.counts
        total = sum(counts.values())
        if total != self.issued:
            raise AssertionError(
                f"conservation violated: issued {self.issued} != "
                f"accounted {total} ({counts})"
            )
        seen = {o.request.index for o in self.outcomes}
        if len(seen) != len(self.outcomes):
            raise AssertionError("conservation violated: duplicate outcomes")
        if self.attempts is not None:
            expected = sum(
                1 + o.retries for o in self.outcomes if o.status != "dropped"
            )
            if self.attempts != expected:
                raise AssertionError(
                    f"conservation violated: {self.attempts} wire attempts != "
                    f"{expected} attributed to terminal outcomes"
                )


class TrafficEngine:
    """Open-loop load from ``callers`` virtual callers over ``engines`` processes.

    Parameters
    ----------
    kernel:
        The kernel to drive.  The engine only ever *spawns* on it; it
        never touches arbitration state.
    process:
        The :class:`~repro.workloads.ArrivalProcess` giving inter-arrival
        gaps of the aggregate request stream.
    count:
        Total requests to schedule.
    request:
        ``request(req: Request)`` → the :class:`~repro.core.EntryCall`
        (or generator) one client issues.  Runs inside a client process;
        it may use ``req.caller``/``req.seq`` to pick keys and args, but
        must derive any randomness from them (not from global state) to
        keep the offered load deterministic.
    callers:
        Size of the logical caller ID space (default one million).
    engines:
        Number of engine processes the caller space is sliced over.
    clients:
        Per-engine bound on concurrently in-flight client processes;
        arrivals beyond it are recorded as ``dropped``.
    seed:
        Engine-private RNG seed for the caller-ID draw.  Deliberately
        string-mixed with the engine name so it can never collide with
        the kernel's integer arbitration seed.
    deadline:
        Optional end-to-end budget (ticks) per request, anchored at the
        *scheduled* arrival: each client sets ``req.at + deadline`` on
        its process before issuing, so every nested call and every retry
        attempt inherits the same absolute deadline.
    retry_policy:
        Optional :class:`~repro.faults.RetryPolicy`: failed attempts are
        re-issued via :func:`~repro.faults.retry` with a per-request seed
        derived from the engine name, seed, and request index (fully
        deterministic, decorrelated across requests).  Requires
        ``request`` to build :class:`~repro.core.EntryCall`\\ s (not raw
        generators).
    retry_budget:
        Optional :class:`~repro.faults.RetryBudget` shared across all
        this engine's clients: when dry, retries surface as ``shed``.
    breaker:
        Optional :class:`~repro.faults.CircuitBreaker` consulted before
        every attempt; while open, requests surface as ``shed``.
    """

    def __init__(
        self,
        kernel: "Kernel",
        process: ArrivalProcess,
        count: int,
        request: Callable[[Request], Any],
        *,
        callers: int = 1_000_000,
        engines: int = 4,
        clients: int = 64,
        seed: int = 0,
        name: str = "traffic",
        deadline: int | None = None,
        retry_policy: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if callers < 1:
            raise ValueError(f"callers must be >= 1, got {callers}")
        if engines < 1:
            raise ValueError(f"engines must be >= 1, got {engines}")
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        self.kernel = kernel
        self.process = process
        self.count = count
        self.request = request
        self.callers = callers
        self.engines = engines
        self.clients = clients
        self.seed = seed
        self.name = name
        self.deadline = deadline
        self.retry_policy = retry_policy
        self.retry_budget = retry_budget
        self.breaker = breaker
        #: The full request schedule, fixed before the kernel runs.
        self.schedule: list[Request] = self._build_schedule()
        self.result = TrafficResult(issued=count, attempts=0)
        #: Outcome observers, called synchronously as each request's
        #: outcome is recorded (in completion order, at the completing
        #: process's virtual time).  The live telemetry plane attaches
        #: here (:func:`repro.workloads.livewire.watch_traffic`); pure
        #: observation — an observer must not issue syscalls.
        self.observers: list[Any] = []

    # -- schedule construction (pure, kernel-independent) -----------------

    def _build_schedule(self) -> list[Request]:
        times = self.process.arrivals(self.count)
        # String seeding keeps this stream disjoint from every integer
        # seed the kernel's arbitration RNG could be given.
        rng = random.Random(f"{self.name}:{self.seed}:callers")
        seqs: dict[int, int] = {}
        schedule = []
        for index, at in enumerate(times):
            caller = rng.randrange(self.callers)
            seq = seqs.get(caller, 0)
            seqs[caller] = seq + 1
            schedule.append(Request(index=index, at=at, caller=caller, seq=seq))
        return schedule

    def slice_for(self, engine_index: int) -> list[Request]:
        """The requests engine ``engine_index`` replays (caller-sliced)."""
        return [
            req for req in self.schedule if req.caller % self.engines == engine_index
        ]

    # -- offered-load trace (issue side, zero kernel involvement) ---------

    def offered_records(self) -> list[dict[str, Any]]:
        """The offered load as span records (see ``repro.obs.analyze``).

        One instant ``call`` span per scheduled request, written entirely
        from the pre-built schedule: the kernel, the scheduler, and the
        observability layer contribute nothing, so two runs with the same
        engine configuration produce byte-identical traces regardless of
        which synchronization mechanism served them.
        """
        return [
            {
                "type": "span",
                "id": req.index + 1,
                "parent": None,
                "kind": "call",
                "name": "offered",
                "process": f"vc{req.caller}",
                "start": req.at,
                "end": req.at,
                "attrs": {"seq": req.seq, "index": req.index},
            }
            for req in self.schedule
        ]

    def write_offered_trace(self, path: str) -> None:
        """Write :meth:`offered_records` as a JSONL trace file."""
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.offered_records():
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    # -- running -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the engine processes (call before ``kernel.run()``)."""
        for engine_index in range(self.engines):
            slice_ = self.slice_for(engine_index)
            if not slice_:
                continue
            self.kernel.spawn(
                self._engine,
                slice_,
                name=f"{self.name}.e{engine_index}",
            )

    def run(self, until: int | None = None) -> TrafficResult:
        """Convenience: :meth:`start`, ``kernel.run()``, conservation check."""
        self.start()
        self.kernel.run(until=until)
        self.result.check_conservation()
        return self.result

    def _engine(self, slice_: list[Request]):
        # Mutable cell shared with this engine's clients: in-flight count.
        inflight = [0]
        for req in slice_:
            now = yield Now()
            if req.at > now:
                yield Delay(req.at - now)
                now = req.at
            if inflight[0] >= self.clients:
                outcome = Outcome(request=req, status="dropped",
                                  issued_at=now, finished_at=now)
                self.result.outcomes.append(outcome)
                for observer in self.observers:
                    observer(outcome)
                continue
            inflight[0] += 1
            yield Spawn(
                self._client,
                args=(req, inflight),
                name=f"{self.name}.vc{req.caller}.{req.seq}",
            )

    def _client(self, req: Request, inflight: list[int]):
        issued_at = self.kernel.clock.now
        status = "ok"
        value = None
        attempts = [0]

        def build():
            attempts[0] += 1
            self.result.attempts += 1
            return self.request(req)

        try:
            if self.deadline is not None:
                # Anchor the end-to-end budget at the *scheduled* arrival:
                # a saturated engine issuing late cannot stretch it, and
                # every nested call / retry attempt inherits it.
                proc = yield Self()
                proc.deadline_at = req.at + self.deadline
            if self.retry_policy is not None:
                value = yield from retry(
                    build,
                    self.retry_policy,
                    seed=f"{self.name}:{self.seed}:retry:{req.index}",
                    budget=self.retry_budget,
                    breaker=self.breaker,
                )
            else:
                built = build()
                if hasattr(built, "send") and hasattr(built, "throw"):
                    value = yield from built
                else:
                    value = yield built
        except AdmissionError:
            status = "shed"
        except RemoteCallError:
            status = "timeout"
        except Exception:
            status = "error"
        finally:
            # On GeneratorExit (run truncated mid-flight) only the slot is
            # released; no outcome is recorded, so check_conservation()
            # reports the truncation instead of inventing a status.
            inflight[0] -= 1
        outcome = Outcome(
            request=req,
            status=status,
            issued_at=issued_at,
            finished_at=self.kernel.clock.now,
            value=value,
            retries=max(0, attempts[0] - 1),
        )
        self.result.outcomes.append(outcome)
        for observer in self.observers:
            observer(outcome)
