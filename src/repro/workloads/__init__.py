"""Workload generation: arrivals, popularity skew, deterministic traces."""

from .generators import ArrivalProcess, Bursty, Poisson, Uniform, closed_loop, open_loop
from .traces import TraceEntry, mixed_trace, replay
from .zipf import Zipf, word_corpus

__all__ = [
    "ArrivalProcess",
    "Uniform",
    "Poisson",
    "Bursty",
    "open_loop",
    "closed_loop",
    "Zipf",
    "word_corpus",
    "TraceEntry",
    "mixed_trace",
    "replay",
]
