"""Workload generation: arrivals, skew, traces, and the traffic engine."""

from .engine import Outcome, Request, TrafficEngine, TrafficResult
from .livewire import watch_traffic
from .generators import (
    ArrivalProcess,
    Bursty,
    Diurnal,
    Poisson,
    Uniform,
    closed_loop,
    open_loop,
)
from .slo import SloReport, find_knee, goodput_timeline, percentile, summarize
from .traces import TraceEntry, mixed_trace, replay
from .zipf import Zipf, word_corpus

__all__ = [
    "ArrivalProcess",
    "Uniform",
    "Poisson",
    "Diurnal",
    "Bursty",
    "open_loop",
    "closed_loop",
    "Zipf",
    "word_corpus",
    "TraceEntry",
    "mixed_trace",
    "replay",
    "TrafficEngine",
    "TrafficResult",
    "Request",
    "Outcome",
    "SloReport",
    "summarize",
    "percentile",
    "find_knee",
    "goodput_timeline",
    "watch_traffic",
]
