"""Arrival processes for driving benchmark workloads.

All generators are seeded independently of the kernel's arbitration RNG
so that changing a scheduling policy never perturbs the offered load —
comparisons across mechanisms see literally identical request sequences.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator

from ..kernel.syscalls import Delay


class ArrivalProcess:
    """Base: an iterator of inter-arrival gaps (integer ticks >= 0)."""

    def gaps(self) -> Iterator[int]:
        raise NotImplementedError

    def arrivals(self, count: int) -> list[int]:
        """Absolute arrival times of the first ``count`` events."""
        out = []
        now = 0
        gen = self.gaps()
        for _ in range(count):
            now += next(gen)
            out.append(now)
        return out


class Uniform(ArrivalProcess):
    """Fixed-rate arrivals: one event every ``period`` ticks."""

    def __init__(self, period: int) -> None:
        if period < 0:
            raise ValueError(f"period must be >= 0, got {period}")
        self.period = period

    def gaps(self) -> Iterator[int]:
        while True:
            yield self.period


class Poisson(ArrivalProcess):
    """Poisson arrivals with the given mean inter-arrival time."""

    def __init__(self, mean_gap: float, seed: int = 0) -> None:
        if mean_gap <= 0:
            raise ValueError(f"mean_gap must be > 0, got {mean_gap}")
        self.mean_gap = mean_gap
        self.seed = seed

    def gaps(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        while True:
            yield max(0, round(rng.expovariate(1.0 / self.mean_gap)))


class Bursty(ArrivalProcess):
    """Bursts of ``burst`` back-to-back events separated by ``quiet`` ticks."""

    def __init__(self, burst: int, quiet: int, jitter: int = 0, seed: int = 0) -> None:
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.burst = burst
        self.quiet = quiet
        self.jitter = jitter
        self.seed = seed

    def gaps(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        while True:
            for index in range(self.burst):
                if index == 0:
                    gap = self.quiet
                    if self.jitter:
                        gap += rng.randint(-self.jitter, self.jitter)
                    yield max(0, gap)
                else:
                    yield 0


def open_loop(
    process: ArrivalProcess,
    count: int,
    request: Callable[[int], Any],
):
    """Driver process body: issue ``count`` requests at the arrival times.

    ``request(i)`` must return a generator-function-compatible callable
    result — each request is spawned as its own process so that slow
    service never throttles the offered load (an *open* system).

    Usage::

        kernel.spawn(open_loop(Poisson(10), 100, lambda i: client(i)))
    """

    def driver():
        from ..kernel.syscalls import Spawn

        gaps = process.gaps()
        for index in range(count):
            gap = next(gaps)
            if gap:
                yield Delay(gap)
            yield Spawn(lambda i=index: request(i), name=f"req{index}")

    return driver


def closed_loop(
    count: int,
    request: Callable[[int], Any],
    think_time: int = 0,
):
    """Driver body: ``count`` sequential requests with optional think time.

    A *closed* system: the next request is issued only after the previous
    completed — models a population of one; run several in parallel for a
    population of N.
    """

    def driver():
        for index in range(count):
            yield from _as_gen(request(index))
            if think_time:
                yield Delay(think_time)

    return driver


def _as_gen(value: Any):
    if hasattr(value, "send") and hasattr(value, "throw"):
        return value

    def once():
        result = yield value
        return result

    return once()
