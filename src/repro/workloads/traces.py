"""Deterministic request traces.

A trace is a list of (time, operation, payload) tuples that can be fed to
any of the competing implementations, guaranteeing that mechanism
comparisons (manager vs monitor vs serializer ...) service *literally
identical* workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..kernel.syscalls import Delay, Spawn


@dataclass(frozen=True)
class TraceEntry:
    """One scripted request."""

    time: int
    operation: str
    payload: Any = None


def mixed_trace(
    operations: dict[str, float],
    count: int,
    mean_gap: float,
    payload_fn: Callable[[int, str], Any] | None = None,
    seed: int = 0,
) -> list[TraceEntry]:
    """A random but reproducible trace mixing operations by weight.

    ``operations`` maps operation name → relative weight.
    """
    if not operations:
        raise ValueError("need at least one operation")
    rng = random.Random(seed)
    names = list(operations)
    weights = [operations[n] for n in names]
    now = 0
    entries = []
    for index in range(count):
        now += max(0, round(rng.expovariate(1.0 / mean_gap))) if mean_gap > 0 else 0
        op = rng.choices(names, weights=weights)[0]
        payload = payload_fn(index, op) if payload_fn else index
        entries.append(TraceEntry(time=now, operation=op, payload=payload))
    return entries


def replay(
    trace: Iterable[TraceEntry],
    handlers: dict[str, Callable[[Any], Any]],
):
    """Driver body replaying a trace: spawns one process per entry.

    ``handlers`` maps operation name → callable(payload) returning a
    process body.  Entries fire at their scripted virtual times.
    """

    def driver():
        now = 0
        for entry in trace:
            if entry.time > now:
                yield Delay(entry.time - now)
                now = entry.time
            handler = handlers[entry.operation]
            yield Spawn(
                lambda h=handler, p=entry.payload: h(p),
                name=f"{entry.operation}@{entry.time}",
            )

    return driver
