"""Exception hierarchy for the ALPS reproduction.

Every error raised by the library derives from :class:`AlpsError` so that
applications can catch library failures with a single ``except`` clause
while still distinguishing programming errors (``TypeError``-like misuse of
the DSL) from runtime conditions (deadlock, channel misuse).
"""

from __future__ import annotations


class AlpsError(Exception):
    """Base class for all errors raised by the ALPS reproduction."""


class KernelError(AlpsError):
    """Misuse of the kernel API (e.g. running a finished kernel)."""


class DeadlockError(KernelError):
    """Raised when no process can ever run again.

    The kernel detects deadlock when the ready queue and the timer queue are
    both empty while at least one process is still blocked.  The message
    includes a dump of every blocked process and what it is waiting for —
    and, when the structured wait-for graph identifies circular waits, the
    actual cycle with object/entry/slot labels — so the failure is
    diagnosable from the exception alone.
    """

    def __init__(
        self, message: str, blocked: list | None = None, wait_for=None
    ) -> None:
        super().__init__(message)
        #: Snapshot of the blocked processes at detection time.
        self.blocked = list(blocked or [])
        #: Structured wait-for snapshot
        #: (:class:`repro.kernel.waitgraph.WaitForSnapshot`) so tests and
        #: the faults runtime can assert on the cycle instead of parsing
        #: the rendered text.  ``None`` when no graph was built.
        self.wait_for = wait_for


class ProcessError(KernelError):
    """A lightweight process misbehaved (e.g. yielded a non-syscall)."""


class ChannelError(AlpsError):
    """Misuse of a channel (type arity mismatch, closed channel, ...)."""


class ChannelTypeError(ChannelError):
    """A message's arity or element types do not match the channel type."""


class SelectError(AlpsError):
    """Misuse of ``select``/``loop`` (no guards, all guards closed, ...)."""


class GuardExhaustedError(SelectError):
    """A ``select`` with no ``else`` has no guard that can ever become ready."""


class ObjectModelError(AlpsError):
    """Misuse of the ALPS object DSL (bad entry declaration, etc.)."""


class InterceptError(ObjectModelError):
    """An ``intercepts`` clause is inconsistent with the entry signatures."""


class ProtocolError(AlpsError):
    """The accept/start/await/finish protocol was violated.

    Examples: ``start`` on a call that was never accepted, ``finish`` on a
    call that is still executing, double ``accept`` of the same slot.

    ``code`` carries the ``repro.analysis`` finding code of the matching
    static check (e.g. ``ALP104`` for finish-without-await), so a defect
    that slipped past — or was suppressed in — the linter still identifies
    itself by the same code at runtime.  The code is also prefixed onto
    the message, ``[ALP104] finish ...``.
    """

    def __init__(self, message: str, code: str | None = None) -> None:
        if code is not None:
            message = f"[{code}] {message}"
        super().__init__(message)
        #: Finding code shared with the static linter, if one applies.
        self.code = code


class CallError(AlpsError):
    """An entry call failed (unknown procedure, arity mismatch, ...)."""


class AdmissionError(CallError):
    """The target object shed this call instead of serving it.

    Raised in the caller when a manager running admission control — a
    ``#P`` queue-cap guard (§2.5.1) selecting a load-shedding arm —
    accepted the call and ``Reject``-ed it without ever starting a body.
    Distinct from :class:`RemoteCallError`: the object is reachable and
    healthy, it is *refusing* work, so blind retries only add load.
    Backpressure-aware clients catch this and back off.
    """

    def __init__(
        self,
        message: str,
        entry: str | None = None,
        obj: str | None = None,
        reason: str | None = None,
    ) -> None:
        super().__init__(message)
        #: Name of the entry procedure the shed call targeted, if known.
        self.entry = entry
        #: ``alps_name`` of the shedding object, if known.
        self.obj = obj
        #: Short machine-readable shed reason (e.g. ``"queue-cap"``).
        self.reason = reason


class PathExpressionError(AlpsError):
    """A path expression failed to parse or was violated at run time."""


class NetworkError(AlpsError):
    """Misuse of the simulated network (unknown node, no route, ...)."""


class ReplicationError(AlpsError):
    """Misuse or unrecoverable state of a replicated object.

    Raised by :class:`repro.replication.Replicated` for configuration
    errors (unknown write entry, too few nodes) and for unrecoverable
    runtime states (no donor replica left for a state transfer).
    Transient distributed failures keep raising
    :class:`RemoteCallError` so ``retry`` and failover logic compose.
    """


class RemoteCallError(AlpsError):
    """A remote entry call failed for a *distributed-systems* reason.

    Raised in the caller when the target node crashed (after the failure
    detector's delay), when the route to the target is partitioned away,
    or when a timed call (``yield obj.p(args, timeout=n)``) expires before
    the response arrives.  Distinct from :class:`CallError` (a programming
    error that is deterministic and not worth retrying): a
    ``RemoteCallError`` is the signal the :func:`repro.faults.retry`
    combinator reacts to.
    """

    def __init__(self, message: str, entry: str | None = None, obj: str | None = None) -> None:
        super().__init__(message)
        #: Name of the entry procedure the failed call targeted, if known.
        self.entry = entry
        #: ``alps_name`` of the target object, if known.
        self.obj = obj


class DeadlineExceeded(RemoteCallError):
    """The call's *end-to-end* deadline expired before a response arrived.

    Distinct from a per-hop timeout (a plain :class:`RemoteCallError`
    raised by ``timeout=``): a timeout says "this attempt took too long,
    try again"; a deadline says "the whole request is out of time" — the
    budget is shared by every nested call and every retry, so when it is
    gone, retrying cannot help.  :func:`repro.faults.retry` therefore
    re-raises it immediately instead of consuming attempts.
    """

    def __init__(
        self,
        message: str,
        entry: str | None = None,
        obj: str | None = None,
        deadline_at: int | None = None,
    ) -> None:
        super().__init__(message, entry=entry, obj=obj)
        #: Absolute virtual tick the deadline expired at, if known.
        self.deadline_at = deadline_at
