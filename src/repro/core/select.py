"""Select/loop conveniences (§2.4).

The kernel's ``Select`` syscall is the alternative construct; the
repetitive construct is simply a ``while True`` around it.  This module
adds the pieces that make manager code read like the paper:

* :func:`par_range` — ``par i = m to n do P(i) end par``;
* :func:`loop` — drive a select repeatedly until a sentinel guard fires;
* re-exports of every guard type so managers import from one place.
"""

from __future__ import annotations

from typing import Any, Callable

from ..channels.channel import ReceiveGuard
from ..kernel.syscalls import Par, Select, SelectResult
from ..kernel.timeouts import Timeout
from .primitives import AcceptGuard, AwaitGuard, WhenGuard

__all__ = [
    "Select",
    "SelectResult",
    "AcceptGuard",
    "AwaitGuard",
    "ReceiveGuard",
    "WhenGuard",
    "Timeout",
    "par_range",
    "loop",
]


def par_range(m: int, n: int, fn: Callable[[int], Any], priority: int | None = None) -> Par:
    """``par i = m to n do P(i) end par`` (§2.1.1) — inclusive bounds.

    ``yield par_range(1, 4, lambda i: worker(i))`` runs ``worker(1)`` ..
    ``worker(4)`` in parallel and returns their results as a list.
    """
    thunks = [(lambda i=i: fn(i)) for i in range(m, n + 1)]
    if priority is None:
        return Par(*thunks)
    return Par(*thunks, priority=priority)


def loop(*guards: Any, stop: Callable[[], bool] | None = None):
    """The repetitive construct: repeatedly select until ``stop()`` holds.

    A generator to be driven with ``yield from``; yields each
    :class:`SelectResult` back to the caller's body via ``sink``-style
    callbacks is *not* Pythonic, so instead managers normally write
    ``while True: result = yield Select(...)`` directly.  ``loop`` exists
    for simple cases::

        yield from loop(g1, g2, stop=lambda: done)

    where the guards' ``commit`` side effects do all the work.
    """
    while stop is None or not stop():
        yield Select(*guards)
