"""Admission control and backpressure, in the paper's vocabulary.

Heavy open-loop traffic forces a question the paper's examples never
face: what does a manager do when offered load exceeds capacity and the
hidden procedure array plus its overflow queue (§2.5) only grow?  The
answer composes three mechanisms ALPS already has:

* **queue-cap guards** — an acceptance condition reading ``#P``
  (§2.5.1): ``when #P > cap`` opens a *load-shedding arm* exactly when
  the backlog exceeds the budget;
* **load-shedding** — the arm accepts the excess call (rendezvous is
  the only way to reach it) and yields
  :class:`~repro.core.primitives.Reject`, resuming the caller with
  :class:`~repro.errors.AdmissionError` at finish cost, far below
  service cost;
* **``pri``-based preference for in-flight work** — run-time guard
  priorities (§2.4) order the manager's arms so work already admitted
  completes before new work is admitted.

The conventional arm priorities (smallest wins):

======================  ====  =================================================
arm                     pri   rationale
======================  ====  =================================================
``await`` (in-flight)   0     finish admitted work first: it holds slots/workers
sweep (dead calls)      1     free slots held by expired calls at reject cost
shed (``#P > cap``)     2     under overload, drain the backlog at reject cost
normal ``accept``       3     admit new work only when not saturated
======================  ====  =================================================

Two latency-aware arms extend the ladder (PR 7): a
:class:`DeadlineSweepGuard` rendezvouses with calls that are already
*dead* — their end-to-end deadline expired while queued, or their caller
was already resumed by a per-hop timeout — so the slot frees at reject
cost instead of wasting a manager body on a caller that is gone; a
:class:`PredictedWaitGuard` sheds a deadlined call on arrival when the
EWMA of the entry's service time times the queue depth already exceeds
the call's remaining budget (serving it would only produce a
late-and-discarded response).

Managers whose normal accept arm carries a *callable* ``pri`` (SCAN,
best-fit) use :data:`SHED_PRI_ALWAYS` for the shed arm instead — a priority
value below any the callable can produce, so shedding still wins under
overload.

Usage inside a manager::

    result = yield Select(
        AwaitGuard(self, "get", pri=AWAIT_PRI),
        ShedGuard(self, "get", cap=self.queue_cap),
        AcceptGuard(self, "get", pri=ACCEPT_PRI),
    )
    call = result.value
    if isinstance(result.guard, ShedGuard):
        yield Reject(call)
    ...
"""

from __future__ import annotations

from typing import Any, Callable

from ..kernel.waiting import Ready
from .primitives import AcceptGuard

#: Conventional arm priorities (see module docstring; smallest wins).
AWAIT_PRI = 0
SWEEP_PRI = 1
SHED_PRI = 2
ACCEPT_PRI = 3

#: Shed-arm priority that undercuts callable accept priorities (SCAN
#: keys, best-fit negated amounts) — any value those expressions can
#: realistically produce sorts after it.
SHED_PRI_ALWAYS = -(10**9)


def over_cap(obj: Any, proc_name: str, cap: int) -> Callable[..., bool]:
    """Acceptance condition ``#P > cap`` for entry ``proc_name``.

    ``#P`` is the paper's pending count (§2.5.1): attached-but-not-yet-
    accepted calls plus the overflow queue.  The returned callable
    ignores the intercepted parameters it is handed, so it fits guards
    of any arity.
    """
    if cap < 0:
        raise ValueError(f"queue cap must be >= 0, got {cap}")
    runtime = obj._entry_runtime(proc_name)
    return lambda *_args: runtime.pending_count() > cap


class ShedGuard(AcceptGuard):
    """``accept P when #P > cap pri E`` — the load-shedding arm.

    An :class:`~repro.core.primitives.AcceptGuard` whose acceptance
    condition is the queue-cap predicate; the manager recognizes the
    chosen arm by type and yields ``Reject`` instead of ``Start``.  The
    guard sheds in attachment order (oldest queued call first), which
    bounds the latency of the calls that *are* served: the backlog never
    silently ages.

    ``reason`` is the machine-readable shed reason the manager forwards
    to ``Reject(call, reason=guard.reason)``; subclasses override it so
    the shed-reason metrics breakdown (``admission.shed.<reason>``) can
    tell queue caps, deadline sweeps and predicted-wait sheds apart.
    """

    reason = "queue-cap"

    def __init__(
        self,
        obj: Any,
        proc_name: str,
        cap: int,
        pri: Any = SHED_PRI,
    ) -> None:
        super().__init__(obj, proc_name, when=over_cap(obj, proc_name, cap), pri=pri)
        self.cap = cap

    def describe(self) -> str:
        return f"shed {self.runtime.spec.name} (#P > {self.cap})"


class DeadlineSweepGuard(ShedGuard):
    """Sweep arm: rendezvous with queued calls that are already dead.

    Ready when an ATTACHED call's end-to-end deadline has expired — or
    its caller was already resumed by a per-hop timeout or crash
    detection — so serving it could not possibly help anyone.  The
    manager yields ``Reject`` and the slot frees at reject cost; since
    the caller is long gone, no error reaches it (``fail_caller`` is a
    no-op after the first resume).  Sweeps in attachment order.

    Runs at :data:`SWEEP_PRI`, between ``await`` and the queue-cap shed
    arm: freeing a slot held by a corpse beats shedding a live call.
    """

    reason = "deadline-expired"

    def __init__(self, obj: Any, proc_name: str, pri: Any = SWEEP_PRI) -> None:
        AcceptGuard.__init__(self, obj, proc_name, when=None, pri=pri)
        self.cap = None

    def poll(self, kernel: Any) -> Ready | None:
        now = kernel.clock.now
        for call in self.runtime.acceptable(self.slot, None, all_matches=True):
            if call.dead(now):
                return Ready(call, token=call)
        return None

    def describe(self) -> str:
        return f"sweep {self.runtime.spec.name} (deadline expired)"


class CpuPressureGuard(ShedGuard):
    """Shed arm keyed to the home node's CPU runqueue depth.

    Queue-cap guards read ``#P`` — this object's own backlog — but on a
    finite machine an object can be the victim of *somebody else's*
    load: its own queue is short while the node's per-CPU runqueues
    (:mod:`repro.kernel.sched`) are saturated, so every admitted body
    will sit behind a wall of unrelated work.  This guard reads the
    scheduling domain directly: it is ready when the total queued work
    on the object's node exceeds ``depth`` ticks, and sheds in
    attachment order like every other shed arm.

    On an unbounded kernel with no node domains the queue depth is
    always 0 and the guard never fires — admission decisions only
    engage when there is a real machine to protect.
    """

    reason = "cpu-pressure"

    def __init__(
        self,
        obj: Any,
        proc_name: str,
        depth: int,
        pri: Any = SHED_PRI,
    ) -> None:
        if depth < 0:
            raise ValueError(f"cpu pressure depth must be >= 0, got {depth}")
        AcceptGuard.__init__(self, obj, proc_name, when=None, pri=pri)
        self.cap = None
        self.depth = depth

    def poll(self, kernel: Any) -> Ready | None:
        node = getattr(self.runtime.obj, "node", None)
        if kernel.cpu_scheduler.queue_depth(node) <= self.depth:
            return None
        for call in self.runtime.acceptable(self.slot, None, all_matches=True):
            return Ready(call, token=call)
        return None

    def describe(self) -> str:
        return f"shed {self.runtime.spec.name} (cpu queue > {self.depth})"


class PredictedWaitGuard(ShedGuard):
    """Latency-aware shed arm: refuse calls that cannot make their deadline.

    Ready for an ATTACHED, deadlined, still-live call when the entry's
    predicted wait — the EWMA of observed body service times multiplied
    by the current queue depth (``#P``) — already exceeds the call's
    remaining budget.  Shedding it on arrival costs one reject; serving
    it would cost a full body *and* still end in ``DeadlineExceeded``.

    Until the first body completes there is no service-time estimate and
    the guard stays quiet (never ready): admission decisions are only
    made from measured evidence, so an idle object admits everything.

    The estimate is the entry's shared
    :class:`~repro.obs.live.stream.Ewma`
    (:attr:`~repro.core.runtime.EntryRuntime.service_estimator`) — the
    same object the live telemetry plane exposes through
    :meth:`repro.obs.live.LivePlane.service_ewma`, so dashboards show
    exactly the number admission control acts on.
    """

    reason = "predicted-wait"

    def __init__(self, obj: Any, proc_name: str, pri: Any = SHED_PRI) -> None:
        AcceptGuard.__init__(self, obj, proc_name, when=None, pri=pri)
        self.cap = None

    def poll(self, kernel: Any) -> Ready | None:
        runtime = self.runtime
        ewma = runtime.service_ewma
        if ewma is None:
            return None
        now = kernel.clock.now
        predicted = ewma * runtime.pending_count()
        for call in runtime.acceptable(self.slot, None, all_matches=True):
            if call.deadline_at is None or call.caller_resumed:
                continue
            if predicted > call.deadline_at - now:
                return Ready(call, token=call)
        return None

    def describe(self) -> str:
        return f"shed {self.runtime.spec.name} (predicted wait > deadline)"
