"""Admission control and backpressure, in the paper's vocabulary.

Heavy open-loop traffic forces a question the paper's examples never
face: what does a manager do when offered load exceeds capacity and the
hidden procedure array plus its overflow queue (§2.5) only grow?  The
answer composes three mechanisms ALPS already has:

* **queue-cap guards** — an acceptance condition reading ``#P``
  (§2.5.1): ``when #P > cap`` opens a *load-shedding arm* exactly when
  the backlog exceeds the budget;
* **load-shedding** — the arm accepts the excess call (rendezvous is
  the only way to reach it) and yields
  :class:`~repro.core.primitives.Reject`, resuming the caller with
  :class:`~repro.errors.AdmissionError` at finish cost, far below
  service cost;
* **``pri``-based preference for in-flight work** — run-time guard
  priorities (§2.4) order the manager's arms so work already admitted
  completes before new work is admitted.

The conventional arm priorities (smallest wins):

======================  ====  =================================================
arm                     pri   rationale
======================  ====  =================================================
``await`` (in-flight)   0     finish admitted work first: it holds slots/workers
shed (``#P > cap``)     1     under overload, drain the backlog at reject cost
normal ``accept``       2     admit new work only when not saturated
======================  ====  =================================================

Managers whose normal accept arm carries a *callable* ``pri`` (SCAN,
best-fit) use :data:`SHED_PRI_ALWAYS` for the shed arm instead — a priority
value below any the callable can produce, so shedding still wins under
overload.

Usage inside a manager::

    result = yield Select(
        AwaitGuard(self, "get", pri=AWAIT_PRI),
        ShedGuard(self, "get", cap=self.queue_cap),
        AcceptGuard(self, "get", pri=ACCEPT_PRI),
    )
    call = result.value
    if isinstance(result.guard, ShedGuard):
        yield Reject(call)
    ...
"""

from __future__ import annotations

from typing import Any, Callable

from .primitives import AcceptGuard

#: Conventional arm priorities (see module docstring; smallest wins).
AWAIT_PRI = 0
SHED_PRI = 1
ACCEPT_PRI = 2

#: Shed-arm priority that undercuts callable accept priorities (SCAN
#: keys, best-fit negated amounts) — any value those expressions can
#: realistically produce sorts after it.
SHED_PRI_ALWAYS = -(10**9)


def over_cap(obj: Any, proc_name: str, cap: int) -> Callable[..., bool]:
    """Acceptance condition ``#P > cap`` for entry ``proc_name``.

    ``#P`` is the paper's pending count (§2.5.1): attached-but-not-yet-
    accepted calls plus the overflow queue.  The returned callable
    ignores the intercepted parameters it is handed, so it fits guards
    of any arity.
    """
    if cap < 0:
        raise ValueError(f"queue cap must be >= 0, got {cap}")
    runtime = obj._entry_runtime(proc_name)
    return lambda *_args: runtime.pending_count() > cap


class ShedGuard(AcceptGuard):
    """``accept P when #P > cap pri E`` — the load-shedding arm.

    An :class:`~repro.core.primitives.AcceptGuard` whose acceptance
    condition is the queue-cap predicate; the manager recognizes the
    chosen arm by type and yields ``Reject`` instead of ``Start``.  The
    guard sheds in attachment order (oldest queued call first), which
    bounds the latency of the calls that *are* served: the backlog never
    silently ages.
    """

    def __init__(
        self,
        obj: Any,
        proc_name: str,
        cap: int,
        pri: Any = SHED_PRI,
    ) -> None:
        super().__init__(obj, proc_name, when=over_cap(obj, proc_name, cap), pri=pri)
        self.cap = cap

    def describe(self) -> str:
        return f"shed {self.runtime.spec.name} (#P > {self.cap})"
