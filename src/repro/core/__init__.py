"""The ALPS object model: managers, hidden procedure arrays, call protocol."""

from .admission import (
    ACCEPT_PRI,
    AWAIT_PRI,
    SHED_PRI,
    SHED_PRI_ALWAYS,
    SWEEP_PRI,
    CpuPressureGuard,
    DeadlineSweepGuard,
    PredictedWaitGuard,
    ShedGuard,
    over_cap,
)
from .calls import Call, CallState
from .combining import Combiner, combine_finishes
from .entry import EntrySpec, Intercept, ObjectDefinition, entry, icpt, local
from .manager import ManagerSpec, manager_process
from .monitoring import (
    LatencySummary,
    max_overlap,
    queue_times,
    response_times,
    service_intervals,
    summarize,
    throughput,
)
from .object_model import AlpsObject, BoundEntry
from .pool import DYNAMIC, PoolConfig, ServerPool
from .primitives import (
    AcceptGuard,
    AwaitGuard,
    EntryCall,
    Finish,
    Reject,
    Start,
    WhenGuard,
    accept,
    await_call,
    execute_call,
)
from .select import loop, par_range

__all__ = [
    "AlpsObject",
    "BoundEntry",
    "entry",
    "local",
    "icpt",
    "Intercept",
    "EntrySpec",
    "ObjectDefinition",
    "manager_process",
    "ManagerSpec",
    "Call",
    "CallState",
    "EntryCall",
    "AcceptGuard",
    "AwaitGuard",
    "WhenGuard",
    "ShedGuard",
    "DeadlineSweepGuard",
    "CpuPressureGuard",
    "PredictedWaitGuard",
    "Start",
    "Finish",
    "Reject",
    "over_cap",
    "AWAIT_PRI",
    "SWEEP_PRI",
    "SHED_PRI",
    "ACCEPT_PRI",
    "SHED_PRI_ALWAYS",
    "accept",
    "await_call",
    "execute_call",
    "Combiner",
    "combine_finishes",
    "PoolConfig",
    "ServerPool",
    "DYNAMIC",
    "par_range",
    "loop",
    "LatencySummary",
    "summarize",
    "response_times",
    "queue_times",
    "throughput",
    "max_overlap",
    "service_intervals",
]
