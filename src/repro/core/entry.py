"""Entry procedure declarations: the ``@entry`` and ``@local`` decorators.

An ALPS object is *defined* by the signatures of its entry procedures and
*implemented* by bodies that may differ in two hidden ways (§2.5, §2.8):

* the body may be a **hidden procedure array** ``P[1..N]`` even though the
  definition exports a single ``P`` — declare with ``@entry(array=N)``;
* the body may take **hidden parameters** and produce **hidden results**
  that only the manager sees — declare with ``hidden_params=k`` /
  ``hidden_results=m``; the hidden formals come after the regular ones,
  exactly as the paper requires.

The decorated method *is* the implementation body; the definition part
(name, parameter count, result count) is derived from the declaration, so
the definition/implementation split of §2.2 is preserved: callers can see
only the exported signature (``ObjectDefinition`` below).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ObjectModelError


@dataclass(frozen=True)
class Intercept:
    """How the manager intercepts a procedure (§2.6 intercepts clause).

    ``params``/``results`` are the lengths of the *initial subsequences*
    of the parameter and result lists that the manager receives at
    ``accept`` and ``await`` respectively (both default to 0: the manager
    learns of the call but values flow directly between caller and body).
    """

    params: int = 0
    results: int = 0


#: Convenience constructor mirroring the paper's ``intercepts P(params; results)``.
def icpt(params: int = 0, results: int = 0) -> Intercept:
    return Intercept(params=params, results=results)


def _normalize_compatible(
    name: str, compatible: str | tuple[str, ...] | list[str] | None
) -> tuple[str, ...]:
    """Validate a ``compatible=`` annotation into a tuple of group names."""
    if compatible is None:
        return ()
    if isinstance(compatible, str):
        compatible = (compatible,)
    if not isinstance(compatible, (tuple, list)) or not all(
        isinstance(g, str) and g for g in compatible
    ):
        raise ObjectModelError(
            f"entry {name!r}: compatible= must be a group name or a "
            f"tuple of group names, got {compatible!r}"
        )
    return tuple(dict.fromkeys(compatible))


class EntrySpec:
    """Static description of one entry (or local) procedure."""

    def __init__(
        self,
        fn: Callable[..., Any],
        returns: int = 0,
        array: int | str | None = None,
        hidden_params: int = 0,
        hidden_results: int = 0,
        exported: bool = True,
        work: int = 0,
        compatible: str | tuple[str, ...] | list[str] | None = None,
    ) -> None:
        self.fn = fn
        self.name = fn.__name__
        self.returns = returns
        #: Array declaration: int size, or the name of an instance
        #: attribute/class constant resolved at object creation.
        self.array = array
        self.hidden_params = hidden_params
        self.hidden_results = hidden_results
        #: Compatibility groups (multiactive-manager annotation surface):
        #: entries sharing a group name declare that their bodies may run
        #: truly concurrently under a future multiactive manager.  Purely
        #: declarative today — no scheduling change — but the whole-program
        #: interference checker (ALP121) statically verifies that entries
        #: declared compatible touch disjoint object attributes.
        self.compatible: tuple[str, ...] = _normalize_compatible(fn.__name__, compatible)
        #: Local procedures (§2.3 "intercept even local procedures") are
        #: not callable from outside the object.
        self.exported = exported
        #: Optional fixed service time (ticks) charged around the body —
        #: convenient for benchmarks that only need a duration.
        self.work = work
        #: Filled in when the owning class's manager declares interception.
        self.intercept: Intercept | None = None

        params = [
            p
            for p in inspect.signature(fn).parameters.values()
            if p.name != "self"
        ]
        for p in params:
            if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
                raise ObjectModelError(
                    f"entry {self.name!r}: *args/**kwargs are not allowed; "
                    f"ALPS entries have fixed signatures"
                )
        total = len(params)
        if hidden_params > total:
            raise ObjectModelError(
                f"entry {self.name!r}: hidden_params={hidden_params} exceeds "
                f"the body's {total} formals"
            )
        #: Number of *definition* (caller-visible) parameters.
        self.params = total - hidden_params
        self.param_names = tuple(p.name for p in params)
        if returns < 0 or hidden_params < 0 or hidden_results < 0:
            raise ObjectModelError(f"entry {self.name!r}: negative counts")

    @property
    def total_results(self) -> int:
        return self.returns + self.hidden_results

    @property
    def intercepted(self) -> bool:
        return self.intercept is not None

    def resolve_array(self, obj: Any) -> int:
        """Resolve the array declaration to a concrete size for ``obj``."""
        if self.array is None:
            return 1
        if isinstance(self.array, int):
            size = self.array
        else:
            size = getattr(obj, self.array, None)
            if size is None:
                raise ObjectModelError(
                    f"entry {self.name!r}: array size attribute "
                    f"{self.array!r} not found on {type(obj).__name__}"
                )
        if not isinstance(size, int) or size < 1:
            raise ObjectModelError(
                f"entry {self.name!r}: array size must be a positive int, "
                f"got {size!r}"
            )
        return size

    def normalize_results(self, raw: Any) -> tuple:
        """Coerce a body's return value into the declared result tuple."""
        expected = self.total_results
        if expected == 0:
            if raw is not None:
                raise ObjectModelError(
                    f"entry {self.name!r} declares no results but returned {raw!r}"
                )
            return ()
        if expected == 1:
            return (raw,)
        if not isinstance(raw, tuple) or len(raw) != expected:
            raise ObjectModelError(
                f"entry {self.name!r} must return a tuple of {expected} "
                f"values (returns={self.returns} + hidden_results="
                f"{self.hidden_results}), got {raw!r}"
            )
        return raw

    def signature(self) -> str:
        """The exported (definition-part) signature, paper style."""
        visible = self.param_names[: self.params]
        sig = f"proc {self.name}({', '.join(visible)})"
        if self.returns:
            sig += f" returns({self.returns})"
        return sig

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EntrySpec {self.signature()}>"


def entry(
    fn: Callable[..., Any] | None = None,
    *,
    returns: int = 0,
    array: int | str | None = None,
    hidden_params: int = 0,
    hidden_results: int = 0,
    work: int = 0,
    compatible: str | tuple[str, ...] | list[str] | None = None,
) -> Any:
    """Declare an exported entry procedure (usable bare or with arguments)."""

    def wrap(f: Callable[..., Any]) -> EntrySpec:
        return EntrySpec(
            f,
            returns=returns,
            array=array,
            hidden_params=hidden_params,
            hidden_results=hidden_results,
            exported=True,
            work=work,
            compatible=compatible,
        )

    return wrap(fn) if fn is not None else wrap


def local(
    fn: Callable[..., Any] | None = None,
    *,
    returns: int = 0,
    array: int | str | None = None,
    hidden_params: int = 0,
    hidden_results: int = 0,
    work: int = 0,
    compatible: str | tuple[str, ...] | list[str] | None = None,
) -> Any:
    """Declare a local procedure (interceptable but not exported, §2.3)."""

    def wrap(f: Callable[..., Any]) -> EntrySpec:
        return EntrySpec(
            f,
            returns=returns,
            array=array,
            hidden_params=hidden_params,
            hidden_results=hidden_results,
            exported=False,
            work=work,
            compatible=compatible,
        )

    return wrap(fn) if fn is not None else wrap


@dataclass(frozen=True)
class ObjectDefinition:
    """The definition part of an object (§2.2): what users may see."""

    name: str
    procedures: tuple[str, ...]
    signatures: dict[str, str] = field(default_factory=dict)

    def __contains__(self, proc: str) -> bool:
        return proc in self.procedures

    def describe(self) -> str:
        lines = [f"object {self.name} defines"]
        for proc in self.procedures:
            lines.append(f"  {self.signatures[proc]};")
        lines.append(f"end {self.name}")
        return "\n".join(lines)
