"""The manager primitives: ``accept``, ``start``, ``await``, ``finish``,
``execute`` (§2.3) and the entry-call syscall itself.

``Accept`` and ``Await`` are *guards* — they appear inside ``select`` /
``loop`` (§2.4) and may carry acceptance conditions (``when``) and
run-time priorities (``pri``).  ``Start`` and ``Finish`` are syscalls the
manager yields directly.  ``execute_call`` is the packaged
``execute P(params, results)`` construct, equivalent to
``start P(params); await P(results); finish P(results)``.

Quantified guards: the paper writes ``(i:1..N) accept P[i] ...``.  Here an
``Accept``/``Await`` with ``slot=None`` ranges over the whole hidden
procedure array; ``slot=i`` names one element.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..errors import (
    AdmissionError,
    CallError,
    DeadlineExceeded,
    ProtocolError,
    RemoteCallError,
)
from ..kernel.process import ProcessState
from ..kernel.syscalls import Select, Syscall
from ..kernel.waiting import Guard, Ready, Waitable
from .calls import Call, CallState

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process
    from .runtime import EntryRuntime


def _runtime_of(source: Any, proc_name: str) -> "EntryRuntime":
    """Resolve an entry runtime from an AlpsObject or a runtime itself."""
    getter = getattr(source, "_entry_runtime", None)
    if getter is not None:
        return getter(proc_name)
    raise ProtocolError(f"{source!r} is not an ALPS object")


class EntryCall(Syscall):
    """Syscall issued by callers: ``X.P(args)`` (§2.2).

    Produced by attribute access on an :class:`~repro.core.object_model.AlpsObject`
    — ``yield buffer.deposit(msg)``.  The caller blocks until the call is
    finished (remote-procedure-call semantics); parallelism comes from
    ``par`` (§2.1.1).

    ``timeout`` makes the call *timed*: if no response (or failure) has
    reached the caller within that many ticks, the caller is resumed with
    a :class:`~repro.errors.RemoteCallError` instead — the same anchored
    one-shot deadline semantics as :class:`~repro.kernel.timeouts.Timeout`
    — and any eventual response for the abandoned call is discarded.

    ``deadline`` gives the call an *end-to-end* budget, distinct from the
    per-hop ``timeout``: it is stored on the :class:`~repro.core.calls.Call`
    as an absolute tick, inherited by every nested call the body issues
    (the pool worker carries ``deadline_at``; a nested explicit deadline
    can only shrink the budget, never extend it), and expires with
    :class:`~repro.errors.DeadlineExceeded`.  A call whose deadline
    passes while still queued is *dead*: sweep arms shed it at accept
    time instead of wasting a body on it.
    """

    __slots__ = ("obj", "proc_name", "args", "from_inside", "timeout", "deadline")

    def __init__(
        self,
        obj: Any,
        proc_name: str,
        args: tuple,
        from_inside: bool = False,
        timeout: int | None = None,
        deadline: int | None = None,
    ) -> None:
        self.obj = obj
        self.proc_name = proc_name
        self.args = args
        self.from_inside = from_inside
        self.timeout = timeout
        self.deadline = deadline

    def handle(self, kernel: "Kernel", proc: "Process", cost: int) -> None:
        try:
            runtime = _runtime_of(self.obj, self.proc_name)
        except ProtocolError as exc:
            kernel.schedule_throw(proc, exc)
            return
        spec = runtime.spec
        if not spec.exported and not self.from_inside:
            kernel.schedule_throw(
                proc,
                CallError(
                    f"{self.proc_name!r} is a local procedure of "
                    f"{self.obj.alps_name} and cannot be called from outside"
                ),
            )
            return
        if len(self.args) != spec.params:
            kernel.schedule_throw(proc, _arity(spec, len(self.args)))
            return
        if self.timeout is not None and self.timeout < 0:
            kernel.schedule_throw(
                proc, CallError(f"call timeout must be >= 0, got {self.timeout}")
            )
            return
        if self.deadline is not None and self.deadline < 0:
            kernel.schedule_throw(
                proc, CallError(f"call deadline must be >= 0, got {self.deadline}")
            )
            return

        call = Call(self.obj, spec, tuple(self.args), proc)
        proc.state = ProcessState.BLOCKED
        proc.blocked_on = f"call {self.obj.alps_name}.{self.proc_name}"
        proc.waiting_for = ("call", call)
        # The caller-perceived issue instant — before any network delay.
        call.issued_at = kernel.clock.now
        # Effective deadline: the smaller of the explicit budget and the
        # budget inherited from the enclosing call this process serves.
        now = kernel.clock.now
        explicit = now + self.deadline if self.deadline is not None else None
        inherited = getattr(proc, "deadline_at", None)
        if explicit is not None and inherited is not None:
            call.deadline_at = min(explicit, inherited)
        else:
            call.deadline_at = explicit if explicit is not None else inherited
        if kernel.obs.enabled:
            kernel.obs.call_issued(call, proc)
            if call.span is not None and call.deadline_at is not None:
                # Remaining end-to-end budget at issue time, for traces.
                call.span.attrs["deadline_left"] = call.deadline_at - now
        if call.deadline_at is not None and call.deadline_at <= now:
            # Inherited budget already spent: fail at issue, deliver nothing.
            _expire_deadline(kernel, call)
            return
        if self.timeout is not None:
            call.timeout = self.timeout
            arm_call_timeout(kernel, call)
        if call.deadline_at is not None:
            arm_call_deadline(kernel, call)

        def deliver() -> None:
            if spec.intercepted:
                runtime.submit(call)
            else:
                # No manager interception: "a process is created
                # implicitly and made to execute the procedure" (§2.3).
                runtime.submit_unmanaged(call)

        # When a fault injector is installed it owns routing: crashed
        # targets, partitions, message loss and jitter all happen there.
        if kernel.faults is not None:
            kernel.faults.route_call(call, proc, deliver)
            return

        # Remote calls (objects placed on another node) acquire network
        # latency on the request and response paths.
        request_delay, response_delay = self.obj._call_latency(proc)
        call.response_delay = response_delay
        if request_delay:
            if call.span is not None:
                call.span.attrs["request_delay"] = request_delay
                _tag_hop(call, proc)
            kernel.post(kernel.clock.now + request_delay, deliver)
        else:
            deliver()


def _tag_hop(call: Call, proc: "Process") -> None:
    """Label a remote call's root span with the RPC hop's endpoints."""
    src = getattr(proc, "node", None)
    dst = getattr(call.obj, "node", None)
    if src is not None:
        call.span.attrs["src_node"] = src.name
    if dst is not None:
        call.span.attrs["dst_node"] = dst.name


def arm_call_timeout(kernel: "Kernel", call: Call) -> None:
    """Post the expiry event of a timed call (cancelled at first resume)."""
    assert call.timeout is not None
    cancel = {"cancelled": False}
    call.timeout_cancel = cancel
    deadline = kernel.clock.now + call.timeout

    def expire() -> None:
        if call.caller_resumed:
            return
        call.caller_resumed = True
        call.finished_at = kernel.clock.now
        if call.deadline_cancel is not None:
            call.deadline_cancel["cancelled"] = True
        if kernel.obs.enabled:
            kernel.obs.complete_call(call, status="timeout")
        kernel.trace.record(
            kernel.clock.now,
            "call_timeout",
            call.caller.name,
            entry=call.entry,
            obj=call.obj.alps_name,
            after=call.timeout,
        )
        # The protocol state is deliberately left alone: the caller is
        # gone (``call.dead()``), but the object may still rendezvous
        # with the corpse — a sweep arm frees the slot at reject cost, a
        # plain accept arm serves it and discards the response
        # (at-least-once).  Forcing FAILED here would wedge the slot and
        # race the accept/start/reject window.  Wake sweeping managers.
        _notify_if_queued(kernel, call)
        kernel.schedule_throw(
            call.caller,
            RemoteCallError(
                f"call to {call.obj.alps_name}.{call.entry} timed out after "
                f"{call.timeout} ticks",
                entry=call.entry,
                obj=call.obj.alps_name,
            ),
        )

    kernel.post(deadline, expire, priority=call.caller.priority, cancel=cancel)


def _notify_if_queued(kernel: "Kernel", call: Call) -> bool:
    """Wake sweep arms on the call's entry if it is still queued.

    Returns True when the call was PENDING/ATTACHED — i.e. an expiry
    left a dead call in the queue for a
    :class:`~repro.core.admission.DeadlineSweepGuard` to reach.
    """
    if call.state not in (CallState.PENDING, CallState.ATTACHED):
        return False
    try:
        runtime = _runtime_of(call.obj, call.entry)
    except ProtocolError:
        return False
    kernel.notify(runtime.arrival)
    return True


def arm_call_deadline(kernel: "Kernel", call: Call) -> None:
    """Post the end-to-end deadline expiry event (cancelled at first resume)."""
    assert call.deadline_at is not None
    cancel = {"cancelled": False}
    call.deadline_cancel = cancel
    kernel.post(
        call.deadline_at,
        lambda: _expire_deadline(kernel, call),
        priority=call.caller.priority,
        cancel=cancel,
    )


def _expire_deadline(kernel: "Kernel", call: Call) -> None:
    """Resume the caller with ``DeadlineExceeded``; leave the call swept-able.

    Unlike a per-hop timeout this does *not* force the call to FAILED:
    a queued call keeps its ATTACHED state (and its slot) so the normal
    rendezvous machinery — ideally a
    :class:`~repro.core.admission.DeadlineSweepGuard` arm — can still
    reach it and free the slot at reject cost.  The arrival waitable is
    notified so a sweeping manager wakes at the expiry tick.
    """
    if call.caller_resumed:
        return
    call.caller_resumed = True
    call.finished_at = kernel.clock.now
    if call.timeout_cancel is not None:
        call.timeout_cancel["cancelled"] = True
    if kernel.obs.enabled:
        kernel.obs.complete_call(call, status="deadline")
    kernel.metrics.counter(
        "deadline.expired", "Calls whose end-to-end deadline expired",
        legacy="deadlines_expired",
    ).inc()
    kernel.trace.record(
        kernel.clock.now,
        "deadline_exceeded",
        call.caller.name,
        entry=call.entry,
        obj=call.obj.alps_name,
        state=call.state.value,
    )
    if _notify_if_queued(kernel, call):
        kernel.metrics.counter(
            "deadline.expired_queued",
            "Deadlines that expired while the call was still queued",
        ).inc()
    kernel.schedule_throw(
        call.caller,
        DeadlineExceeded(
            f"call to {call.obj.alps_name}.{call.entry} exceeded its "
            f"deadline (t={call.deadline_at})",
            entry=call.entry,
            obj=call.obj.alps_name,
            deadline_at=call.deadline_at,
        ),
    )


def _arity(spec: Any, got: int) -> CallError:
    return CallError(
        f"{spec.name} expects {spec.params} argument(s), got {got}"
    )


class AcceptGuard(Guard):
    """``accept P[i](params) when B pri E`` (§2.3, §2.4).

    Ready when a call is attached (and unaccepted) on a matching slot and
    the acceptance condition — evaluated on the intercepted parameter
    subsequence — holds.  Committing performs the rendezvous: the manager
    receives the :class:`~repro.core.calls.Call` handle carrying the
    intercepted parameters.
    """

    def __init__(
        self,
        obj: Any,
        proc_name: str,
        slot: int | None = None,
        when: Callable[..., bool] | None = None,
        pri: Any = None,
    ) -> None:
        self.runtime = _runtime_of(obj, proc_name)
        self.slot = slot
        self.when = when
        self.pri = pri
        self.commit_cost = 0

    def poll(self, kernel: "Kernel") -> Ready | None:
        # A quantified guard (slot=None) with a pri clause ranges over the
        # whole array: "(i:1..N) accept P[i] ... pri E" selects the
        # candidate with the smallest priority value (§2.4).
        if self.pri is not None and callable(self.pri):
            calls = self.runtime.acceptable(self.slot, self.when, all_matches=True)
            if not calls:
                return None
            call = min(calls, key=self.pri)
        else:
            call = self.runtime.acceptable(self.slot, self.when)
            if call is None:
                return None
        return Ready(call, token=call)

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> Call:
        call: Call = ready.token
        call._expect_state(CallState.ATTACHED)
        call.state = CallState.ACCEPTED
        call.accepted_at = kernel.clock.now
        kernel.stats.accepts += 1
        self.commit_cost = kernel.costs.accept
        return call

    def waitables(self) -> Iterable[Waitable]:
        return (self.runtime.arrival,)

    def describe(self) -> str:
        slot = "" if self.slot is None else f"[{self.slot}]"
        return f"accept {self.runtime.spec.name}{slot}"


class AwaitGuard(Guard):
    """``await P[i](results) when B pri E`` (§2.3, §2.4).

    Ready when a started body on a matching slot has terminated and the
    condition — evaluated on the intercepted result subsequence — holds.
    """

    def __init__(
        self,
        obj: Any,
        proc_name: str,
        slot: int | None = None,
        when: Callable[..., bool] | None = None,
        pri: Any = None,
        call: Call | None = None,
    ) -> None:
        self.runtime = _runtime_of(obj, proc_name)
        self.slot = call.slot if call is not None else slot
        self.only_call = call
        self.when = when
        self.pri = pri
        self.commit_cost = 0

    def poll(self, kernel: "Kernel") -> Ready | None:
        if self.only_call is not None:
            calls = self.runtime.awaitable(self.slot, self.when, all_matches=True)
            if self.only_call not in calls:
                return None
            return Ready(self.only_call, token=self.only_call)
        if self.pri is not None and callable(self.pri):
            calls = self.runtime.awaitable(self.slot, self.when, all_matches=True)
            if not calls:
                return None
            call = min(calls, key=self.pri)
        else:
            call = self.runtime.awaitable(self.slot, self.when)
            if call is None:
                return None
        return Ready(call, token=call)

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> Call:
        call: Call = ready.token
        call._expect_state(CallState.BODY_DONE)
        call.state = CallState.AWAITED
        kernel.stats.awaits += 1
        self.commit_cost = kernel.costs.await_
        return call

    def waitables(self) -> Iterable[Waitable]:
        return (self.runtime.completion,)

    def wait_targets(self, kernel: "Kernel") -> list:
        """Processes whose progress could make this guard ready.

        Used by the wait-for graph (:mod:`repro.kernel.waitgraph`): an
        ``await`` fires when a started body reaches BODY_DONE, so while
        blocked the selector is waiting on the body processes of the
        matching STARTED calls.
        """
        if self.only_call is not None:
            calls = [self.only_call]
        elif self.slot is None:
            calls = [c for c in self.runtime.slots if c is not None]
        elif 0 <= self.slot < self.runtime.array_size:
            calls = [c for c in (self.runtime.slots[self.slot],) if c is not None]
        else:
            calls = []
        return [
            c.body_process
            for c in calls
            if c.state == CallState.STARTED and c.body_process is not None
        ]

    def describe(self) -> str:
        slot = "" if self.slot is None else f"[{self.slot}]"
        return f"await {self.runtime.spec.name}{slot}"


class WhenGuard(Guard):
    """A pure boolean guard: ``when B => S`` with no communication.

    Ready iff the condition evaluates true *at poll time*; infeasible
    otherwise (a select consisting only of false ``when`` guards raises
    ``GuardExhaustedError``, since nothing can ever wake it).
    """

    def __init__(self, condition: Callable[[], bool] | bool, value: Any = None, pri: Any = None) -> None:
        self.condition = condition
        self.value = value
        self.pri = pri

    def _holds(self) -> bool:
        return bool(self.condition() if callable(self.condition) else self.condition)

    def poll(self, kernel: "Kernel") -> Ready | None:
        return Ready(self.value) if self._holds() else None

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> Any:
        return ready.value

    def feasible(self) -> bool:
        # A boolean guard cannot become true while the selector is blocked
        # (only the selector could change it), so false means infeasible.
        return self._holds()

    def describe(self) -> str:
        return "when <cond>"


class Start(Syscall):
    """``start P[i](...)``: launch the accepted call's body asynchronously.

    The manager supplies the intercepted parameters back (implicitly — the
    call still carries them) plus any *hidden* parameters (§2.8).  The
    manager does not block: "the asynchronous nature of the start
    primitive allows the manager to accept other remote calls while the
    execution of P is in progress" (§2.3).  Returns the call.
    """

    __slots__ = ("call", "hidden")

    def __init__(self, call: Call, *hidden: Any) -> None:
        self.call = call
        self.hidden = hidden

    def handle(self, kernel: "Kernel", proc: "Process", cost: int) -> None:
        call = self.call
        try:
            call._expect_state(CallState.ACCEPTED, code="ALP201")
            if len(self.hidden) != call.spec.hidden_params:
                raise ProtocolError(
                    f"start {call.entry}: expected {call.spec.hidden_params} "
                    f"hidden parameter(s), got {len(self.hidden)}",
                    code="ALP108",
                )
        except ProtocolError as exc:
            kernel.schedule_throw(proc, exc)
            return
        call.hidden_args = tuple(self.hidden)
        runtime = _runtime_of(call.obj, call.entry)
        runtime.start_body(call, managed=True)
        kernel.schedule_resume(proc, call, cost=cost + kernel.costs.start)


class Finish(Syscall):
    """``finish P[i](...)``: endorse termination and resume the caller.

    For an awaited call the manager supplies the intercepted-result
    subsequence (pass nothing to forward the body's own values unchanged);
    the body's remaining results flow to the caller directly.  ``finish``
    never blocks: "the caller of P is simply waiting for the results"
    (§2.3).

    Applied straight after ``accept`` — without any ``start`` — this is
    request *combining* (§2.7): the manager fabricates the full result
    list itself and no body ever runs.
    """

    __slots__ = ("call", "results", "_explicit")

    def __init__(self, call: Call, *results: Any) -> None:
        self.call = call
        self.results = results
        self._explicit = len(results) > 0

    def handle(self, kernel: "Kernel", proc: "Process", cost: int) -> None:
        call = self.call
        runtime = _runtime_of(call.obj, call.entry)
        spec = call.spec
        try:
            call._expect_state(CallState.AWAITED, CallState.ACCEPTED, code="ALP104")
            if call.state == CallState.AWAITED:
                # Normal termination: manager overrides the intercepted
                # prefix of the results (or forwards it untouched).
                icpt = spec.intercept.results if spec.intercept else 0
                if self._explicit and len(self.results) != icpt:
                    raise ProtocolError(
                        f"finish {call.entry}: manager must supply exactly "
                        f"the {icpt} intercepted result(s), got {len(self.results)}",
                        code="ALP107",
                    )
                prefix = self.results if self._explicit else call.body_results[:icpt]
                final = tuple(prefix) + tuple(call.body_results[icpt : spec.returns])
            else:
                # Combining: the call was never started; the manager is
                # "responsible to generate all the results that the caller
                # expects" (§2.7).
                if len(self.results) != spec.returns:
                    raise ProtocolError(
                        f"finish-without-start {call.entry}: manager must "
                        f"supply all {spec.returns} result(s), got "
                        f"{len(self.results)}",
                        code="ALP107",
                    )
                final = tuple(self.results)
                call.combined = True
                kernel.stats.calls_combined += 1
        except ProtocolError as exc:
            kernel.schedule_throw(proc, exc)
            return

        was_started = call.state == CallState.AWAITED
        call.state = CallState.DONE
        call.finished_at = kernel.clock.now
        kernel.stats.finishes += 1
        kernel.stats.calls_completed += 1
        if was_started:
            runtime.pool.release(call)
        runtime.detach(call)
        runtime.record(call)
        runtime.resume_caller(call, final)
        kernel.schedule_resume(proc, None, cost=cost + kernel.costs.finish)


class Reject(Syscall):
    """``reject P[i]``: shed an accepted call instead of serving it.

    The admission-control counterpart of ``finish`` (not in the paper's
    syntax, but composed entirely from its mechanisms): a manager arm
    guarded by the queue length — ``when #P > cap`` (§2.5.1) — accepts
    the excess call (the rendezvous is the only way to reach it) and
    refuses it without ever ``start``-ing a body.  The caller is resumed
    with :class:`~repro.errors.AdmissionError`; the array slot frees
    immediately so a waiting call can attach.  Like ``finish``,
    ``reject`` never blocks, and its cost is the finish cost — shedding
    must stay cheaper than serving or it is no defence against overload.
    """

    __slots__ = ("call", "reason")

    def __init__(self, call: Call, reason: str = "queue-cap") -> None:
        self.call = call
        self.reason = reason

    def handle(self, kernel: "Kernel", proc: "Process", cost: int) -> None:
        call = self.call
        try:
            call._expect_state(CallState.ACCEPTED)
        except ProtocolError as exc:
            kernel.schedule_throw(proc, exc)
            return
        runtime = _runtime_of(call.obj, call.entry)
        if call.caller_resumed:
            # A sweep: the caller was already resumed (deadline expiry,
            # per-hop timeout, crash detection) — this reject only frees
            # the slot, so it is not counted as a shed response.
            kernel.metrics.counter(
                "admission.swept",
                "Dead queued calls swept at accept time (slot freed, "
                "no response owed)",
            ).inc()
            runtime.detach(call)
            call.state = CallState.FAILED
            kernel.schedule_resume(proc, None, cost=cost + kernel.costs.finish)
            return
        call.finished_at = kernel.clock.now
        kernel.stats.calls_shed += 1
        kernel.metrics.counter(
            f"admission.shed.{self.reason}",
            "Calls shed by admission control, by reason",
        ).inc()
        runtime.detach(call)
        runtime.fail_caller(
            call,
            AdmissionError(
                f"{call.obj.alps_name}.{call.entry} shed the call "
                f"({self.reason})",
                entry=call.entry,
                obj=call.obj.alps_name,
                reason=self.reason,
            ),
            status="shed",
        )
        kernel.schedule_resume(proc, None, cost=cost + kernel.costs.finish)


# ----------------------------------------------------------------------
# Sugar: single-guard selects and the packaged execute
# ----------------------------------------------------------------------


def accept(
    obj: Any,
    proc_name: str,
    slot: int | None = None,
    when: Callable[..., bool] | None = None,
) -> Select:
    """Blocking ``accept``: ``call = yield accept(self, "deposit")``."""
    select = Select(AcceptGuard(obj, proc_name, slot=slot, when=when))
    select.unwrap = True
    return select


def await_call(
    obj: Any,
    proc_name: str,
    slot: int | None = None,
    when: Callable[..., bool] | None = None,
    call: Call | None = None,
) -> Select:
    """Blocking ``await``: ``done = yield await_call(self, "deposit")``."""
    select = Select(AwaitGuard(obj, proc_name, slot=slot, when=when, call=call))
    select.unwrap = True
    return select


def execute_call(call: Call, *hidden: Any):
    """The packaged ``execute P(params, results)`` (§2.3).

    Equivalent to ``start P; await P; finish P`` with results forwarded
    unchanged.  Use as ``yield from execute_call(call)``; the manager
    blocks until the body completes — monitor-style exclusion.
    """
    yield Start(call, *hidden)
    done = yield await_call(call.obj, call.entry, call=call)
    yield Finish(done)
    return done
