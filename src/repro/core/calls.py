"""Entry-call records and their life cycle.

Every invocation of an entry procedure is reified as a :class:`Call` that
moves through the protocol of §2.3:

``PENDING`` (issued, waiting to be attached to a procedure-array slot) →
``ATTACHED`` (bound to ``P[i]``, visible to ``accept P[i]``) →
``ACCEPTED`` (manager rendezvoused, intercepted parameters transferred) →
``STARTED`` (body executing asynchronously) →
``BODY_DONE`` (body ready to terminate, visible to ``await P[i]``) →
``AWAITED`` (manager received intercepted results) →
``DONE`` (manager ``finish``ed; caller resumed with results).

Combining (§2.7) short-circuits: ``ACCEPTED → DONE`` with the manager
fabricating all results.  Non-intercepted entries skip the manager
entirely: ``PENDING → STARTED → DONE``.

Timestamps for every transition are recorded so benchmarks can report
response time, queueing delay and service time without extra plumbing.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from ..errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.process import Process
    from .entry import EntrySpec


class CallState(enum.Enum):
    PENDING = "pending"
    ATTACHED = "attached"
    ACCEPTED = "accepted"
    STARTED = "started"
    BODY_DONE = "body_done"
    AWAITED = "awaited"
    DONE = "done"
    FAILED = "failed"


class Call:
    """One invocation of an entry (or intercepted local) procedure."""

    _counter = 0

    __slots__ = (
        "call_id",
        "obj",
        "spec",
        "args",
        "caller",
        "state",
        "slot",
        "hidden_args",
        "body_results",
        "body_process",
        "combined",
        "issued_at",
        "attached_at",
        "accepted_at",
        "started_at",
        "dispatched_at",
        "body_done_at",
        "finished_at",
        "response_delay",
        "caller_resumed",
        "timeout",
        "timeout_cancel",
        "deadline_at",
        "deadline_cancel",
        "interrupted",
        "delivery_epoch",
        "span",
    )

    def __init__(self, obj: Any, spec: "EntrySpec", args: tuple, caller: "Process") -> None:
        kernel = getattr(obj, "kernel", None)
        if kernel is not None:
            kernel._next_call_id += 1
            self.call_id = kernel._next_call_id
        else:
            Call._counter += 1
            self.call_id = Call._counter
        self.obj = obj
        self.spec = spec
        #: Invocation parameters (the *definition* parameters only).
        self.args = args
        self.caller = caller
        self.state = CallState.PENDING
        #: Index into the hidden procedure array once attached, else None.
        self.slot: int | None = None
        #: Hidden parameters supplied by the manager at ``start`` (§2.8).
        self.hidden_args: tuple = ()
        #: Full normalized result tuple produced by the body
        #: (definition results then hidden results).
        self.body_results: tuple | None = None
        self.body_process: "Process | None" = None
        #: True when the manager finished this call without starting it.
        self.combined = False
        self.issued_at: int | None = None
        self.attached_at: int | None = None
        self.accepted_at: int | None = None
        self.started_at: int | None = None
        #: When the body actually landed on a server process — later than
        #: ``started_at`` whenever the pool's backlog queued the start.
        self.dispatched_at: int | None = None
        self.body_done_at: int | None = None
        self.finished_at: int | None = None
        #: Extra network delay to apply when resuming the caller (set by
        #: the RPC layer for remote calls).
        self.response_delay = 0
        #: True once the caller has been resumed or thrown into — exactly
        #: once per call, whichever of completion, failure, timeout expiry
        #: or crash detection happens first wins.
        self.caller_resumed = False
        #: Deadline of a timed call (``yield obj.p(args, timeout=n)``).
        self.timeout: int | None = None
        #: Cancellation token of the armed timeout event, if any.
        self.timeout_cancel: dict | None = None
        #: Absolute end-to-end deadline (§ deadline propagation): the
        #: smaller of the caller's explicit ``deadline=`` and any budget
        #: inherited from the process serving an enclosing call.
        self.deadline_at: int | None = None
        #: Cancellation token of the armed deadline event, if any.
        self.deadline_cancel: dict | None = None
        #: Set by the fault injector when a node crash interrupted this
        #: call; a Supervisor may re-queue it (which clears the flag).
        self.interrupted = False
        #: Bumped whenever a crash invalidates an in-flight request
        #: delivery; stale delivery events compare epochs and drop out.
        self.delivery_epoch = 0
        #: Root observability span of this call, while open; None when
        #: spans are disabled (the common case) or once completed.
        self.span = None

    # -- views used by the manager ---------------------------------------

    @property
    def entry(self) -> str:
        """Name of the invoked procedure."""
        return self.spec.name

    @property
    def intercepted_args(self) -> tuple:
        """The initial parameter subsequence the manager intercepts (§2.6)."""
        return self.args[: self.spec.intercept.params]

    @property
    def intercepted_results(self) -> tuple:
        """The initial result subsequence the manager intercepts (§2.6)."""
        if self.body_results is None:
            raise ProtocolError(
                f"call #{self.call_id} to {self.entry}: results not available "
                f"before the body terminates"
            )
        return self.body_results[: self.spec.intercept.results]

    @property
    def hidden_results(self) -> tuple:
        """Results beyond the definition's result list (§2.8)."""
        if self.body_results is None:
            raise ProtocolError(
                f"call #{self.call_id} to {self.entry}: results not available "
                f"before the body terminates"
            )
        return self.body_results[self.spec.returns :]

    # -- deadlines ---------------------------------------------------------

    def remaining_deadline(self, now: int) -> int | None:
        """Ticks of end-to-end budget left at ``now`` (None = unbounded)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - now

    def deadline_expired(self, now: int) -> bool:
        """True once the deadline tick has been reached (inclusive)."""
        return self.deadline_at is not None and self.deadline_at <= now

    def dead(self, now: int) -> bool:
        """True when serving this call can no longer help its caller.

        Either the caller was already resumed (per-hop timeout, crash
        detection) or the end-to-end deadline has passed — in both cases
        a body would run for nobody.  Sweep arms shed these at accept
        time (see :class:`~repro.core.admission.DeadlineSweepGuard`).
        """
        return self.caller_resumed or self.deadline_expired(now)

    # -- metrics -----------------------------------------------------------

    @property
    def response_time(self) -> int | None:
        """Virtual ticks from issue to completion (None if unfinished)."""
        if self.issued_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.issued_at

    @property
    def queue_time(self) -> int | None:
        """Ticks spent before the manager accepted the call."""
        if self.issued_at is None or self.accepted_at is None:
            return None
        return self.accepted_at - self.issued_at

    def _expect_state(self, *allowed: CallState, code: str | None = None) -> None:
        if self.state not in allowed:
            names = "/".join(s.value for s in allowed)
            raise ProtocolError(
                f"call #{self.call_id} to {self.entry}[{self.slot}] is "
                f"{self.state.value}, expected {names}",
                code=code,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Call #{self.call_id} {self.entry}"
            + (f"[{self.slot}]" if self.slot is not None else "")
            + f" {self.state.value}>"
        )
