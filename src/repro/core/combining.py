"""Request combining (§2.7).

"A manager need not start a procedure execution for every entry call that
it accepts.  For some applications it is more economical if the manager
can combine some of the pending requests and synthesize a single request
... so that a single procedure execution would serve the needs of several
users."  This is "a software adaptation of the memory combining that is
used in the NYU Ultracomputer".

The mechanics are pure manager programming — ``accept`` a call, remember
it, and later ``finish`` it without ever ``start``-ing it — but the
bookkeeping ("record that Word is now being searched on behalf of
Search[i]") is common enough that we package it as :class:`Combiner`.
"""

from __future__ import annotations

from typing import Any, Generic, Hashable, TypeVar

from .calls import Call

K = TypeVar("K", bound=Hashable)


class Combiner(Generic[K]):
    """Tracks which requests ride on which in-flight computation.

    For each key (e.g. the word being searched) the first accepted call
    becomes the *leader* — the manager starts a body for it — and later
    calls with the same key become *followers*, parked until the leader's
    result arrives and then finished with the same result.
    """

    def __init__(self) -> None:
        self._inflight: dict[K, list[Call]] = {}
        #: Lifetime counters for benchmarks.
        self.leaders = 0
        self.followers = 0

    def join(self, key: K, call: Call) -> bool:
        """Register ``call`` under ``key``; True iff it is the leader."""
        waiting = self._inflight.get(key)
        if waiting is None:
            self._inflight[key] = []
            self.leaders += 1
            return True
        waiting.append(call)
        self.followers += 1
        return False

    def settle(self, key: K) -> list[Call]:
        """The leader's result arrived: pop and return the followers."""
        return self._inflight.pop(key, [])

    def waiting_on(self, key: K) -> int:
        """Number of followers currently riding on ``key``."""
        waiting = self._inflight.get(key)
        return len(waiting) if waiting is not None else 0

    @property
    def inflight_keys(self) -> set:
        return set(self._inflight)

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: K) -> bool:
        return key in self._inflight


def combine_finishes(combiner: Combiner, key: Any, *results: Any):
    """Generator fragment: finish every follower of ``key`` with ``results``.

    Use inside a manager as ``yield from combine_finishes(c, word, meaning)``.
    """
    from .primitives import Finish

    for follower in combiner.settle(key):
        yield Finish(follower, *results)
