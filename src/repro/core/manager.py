"""Manager declaration: the ``@manager_process`` decorator.

The manager (§2.3) is "a special process called a manager which intercepts
entry calls and implements the synchronization and scheduling for the
object".  It is:

* declared only in the implementation part — here, a decorated generator
  method on the object class; callers never see it;
* optional — objects without a manager start a server process implicitly
  per call;
* started implicitly after the object's initialization code runs;
* executed at high priority by default ("the manager process should be
  executed at a high priority compared to the other processes in the
  object so that the manager is more receptive to entry calls").

The ``intercepts`` clause lists the procedures whose calls are directed to
the manager, optionally with the lengths of the intercepted parameter and
result subsequences (§2.6): ``intercepts={"search": icpt(params=1,
results=1)}`` is the paper's ``intercepts Search(String; String)``.
Procedures not listed are started implicitly, "the flexibility to define
entry procedures that are not intercepted by the manager (e.g. a procedure
that returns the object's status)".
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..errors import InterceptError, ObjectModelError
from ..kernel.process import PRIORITY_MANAGER
from .entry import Intercept


class ManagerSpec:
    """Static description of an object's manager process."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        intercepts: Mapping[str, Intercept] | Iterable[str],
        priority: int = PRIORITY_MANAGER,
    ) -> None:
        self.fn = fn
        self.priority = priority
        if isinstance(intercepts, Mapping):
            normalized = dict(intercepts)
        else:
            normalized = {name: Intercept() for name in intercepts}
        for name, spec in normalized.items():
            if not isinstance(spec, Intercept):
                raise ObjectModelError(
                    f"intercepts[{name!r}] must be an Intercept (use icpt()), "
                    f"got {spec!r}"
                )
        self.intercepts: dict[str, Intercept] = normalized

    def validate(self, entries: Mapping[str, Any], owner: str) -> None:
        """Check the clause against the object's entry declarations."""
        for name, intercept in self.intercepts.items():
            spec = entries.get(name)
            if spec is None:
                raise InterceptError(
                    f"{owner}: manager intercepts unknown procedure {name!r}"
                )
            if intercept.params > spec.params:
                raise InterceptError(
                    f"{owner}.{name}: intercepts {intercept.params} parameters "
                    f"but the definition has only {spec.params} — the clause "
                    f"must name an initial subsequence (§2.6)"
                )
            if intercept.results > spec.returns:
                raise InterceptError(
                    f"{owner}.{name}: intercepts {intercept.results} results "
                    f"but the definition returns only {spec.returns}"
                )
        for name, spec in entries.items():
            if (spec.hidden_params or spec.hidden_results) and name not in self.intercepts:
                raise InterceptError(
                    f"{owner}.{name}: hidden parameters/results require the "
                    f"manager to intercept the procedure (§2.8)"
                )


def manager_process(
    *,
    intercepts: Mapping[str, Intercept] | Iterable[str],
    priority: int = PRIORITY_MANAGER,
) -> Callable[[Callable[[Any], Any]], ManagerSpec]:
    """Declare the object's manager process.

    Usage::

        @manager_process(intercepts=["deposit", "remove"])
        def mgr(self):
            while True:
                ...

    The decorated method must be a generator; it is spawned as a daemon
    process at object creation, after the initialization code.
    """

    def wrap(fn: Callable[[Any], Any]) -> ManagerSpec:
        return ManagerSpec(fn, intercepts=intercepts, priority=priority)

    return wrap
