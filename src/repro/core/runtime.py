"""Per-object, per-entry runtime state: the hidden procedure array.

An :class:`EntryRuntime` owns the array slots of one entry procedure, the
overflow queue of calls waiting to be attached ("if there are more
requests than can be accommodated in the procedure array P, the remaining
requests continue to wait", §2.5), and the two waitables managers block
on: *arrival* (a call became attached, so ``accept`` may fire) and
*completion* (a body became ready to terminate, so ``await`` may fire).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from ..errors import CallError, ProtocolError
from ..kernel.waiting import Waitable
from ..obs.live.stream import Ewma
from .calls import Call, CallState

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from .entry import EntrySpec
    from .pool import ServerPool


#: Smoothing factor of the per-entry service-time EWMA read by
#: :class:`~repro.core.admission.PredictedWaitGuard`.  Fixed (not
#: configurable per call) so two same-seed runs predict identically.
EWMA_ALPHA = 0.2


class EntryRuntime:
    """Runtime state for one entry procedure of one object instance."""

    def __init__(self, obj: Any, spec: "EntrySpec", kernel: "Kernel", pool: "ServerPool") -> None:
        self.obj = obj
        self.spec = spec
        self.kernel = kernel
        self.pool = pool
        self.array_size = spec.resolve_array(obj)
        #: ``slots[i]`` is the call currently attached to ``P[i]`` (through
        #: its whole accept→finish life), or None when the element is free.
        self.slots: list[Call | None] = [None] * self.array_size
        #: Calls waiting for a free array element.
        self.waiting: deque[Call] = deque()
        #: Notified when a call becomes ATTACHED (wakes ``accept`` guards).
        self.arrival = Waitable()
        #: Notified when a body reaches BODY_DONE (wakes ``await`` guards).
        self.completion = Waitable()
        #: Completed calls, retained when the object records statistics.
        self.completed: list[Call] = []
        self.record_calls = False
        #: EWMA of observed body service times (dispatch → body done), in
        #: ticks; ``.value`` is None until the first body completes.
        #: Deterministic: updated only from virtual timestamps, in
        #: completion order.  One estimator serves two readers —
        #: :class:`~repro.core.admission.PredictedWaitGuard` and the live
        #: telemetry plane's query API
        #: (:meth:`repro.obs.live.LivePlane.service_ewma`) — and it is
        #: always on, so schedules are identical with the plane on or off.
        self.service_estimator = Ewma(EWMA_ALPHA)

    @property
    def service_ewma(self) -> float | None:
        """The current service-time estimate in ticks (None if unmeasured)."""
        return self.service_estimator.value

    # ------------------------------------------------------------------
    # Attachment (§2.5)
    # ------------------------------------------------------------------

    def pending_count(self) -> int:
        """The paper's ``#P``: attached-but-not-accepted plus waiting."""
        attached_unaccepted = sum(
            1
            for call in self.slots
            if call is not None and call.state == CallState.ATTACHED
        )
        return attached_unaccepted + len(self.waiting)

    def submit(self, call: Call) -> None:
        """A new invocation arrived: attach it or queue it."""
        if call.issued_at is None:
            call.issued_at = self.kernel.clock.now
        self.kernel.stats.calls_issued += 1
        if not self.try_attach(call):
            self.waiting.append(call)
            self._queue_event("slot.queue.enter", call)

    def submit_unmanaged(self, call: Call) -> None:
        """Invocation of a non-intercepted entry (§2.3).

        No manager rendezvous: "each time an entry procedure is called a
        process is created implicitly and made to execute the procedure".
        Array slots still bound concurrency if the entry declares one.
        """
        if call.issued_at is None:
            call.issued_at = self.kernel.clock.now
        self.kernel.stats.calls_issued += 1
        if self.spec.array is not None and not self.try_attach(call):
            self.waiting.append(call)
            self._queue_event("slot.queue.enter", call)
            return
        self.start_body(call, managed=False)

    def try_attach(self, call: Call) -> bool:
        """Attach ``call`` to a free element, if any.

        The element is "selected arbitrarily by the implementation"
        (§2.5); under ``ordered`` arbitration the lowest free index is
        used, under ``random`` a seeded-random free index.
        """
        free = [i for i, slot in enumerate(self.slots) if slot is None]
        if not free:
            return False
        if self.kernel.arbitration == "random" and len(free) > 1:
            index = self.kernel.rng.choice(free)
        else:
            index = free[0]
        call.slot = index
        call.state = CallState.ATTACHED
        call.attached_at = self.kernel.clock.now
        self.slots[index] = call
        self.kernel.notify(self.arrival)
        return True

    def _queue_event(self, kind: str, call: Call) -> None:
        """Sink-only instant marking a slot-queue boundary (§2.5 overflow).

        Pure observation: delivered straight to the attached sinks, never
        the event queue, so the schedule is untouched (the neutrality
        test in ``tests/obs/`` runs this path with sinks on and off).
        """
        obs = self.kernel.obs
        if not obs.enabled:
            return
        obs.instant(
            kind,
            process=call.caller.name,
            obj=self.obj.alps_name,
            entry=self.spec.name,
            call_id=call.call_id,
            slot=call.slot,
            waiting=len(self.waiting),
        )

    def detach(self, call: Call) -> None:
        """Free the call's slot and attach the next waiting call."""
        assert call.slot is not None
        if self.slots[call.slot] is not call:
            raise ProtocolError(
                f"{self.spec.name}[{call.slot}]: detach of a call that is "
                f"not attached there"
            )
        self.slots[call.slot] = None
        while self.waiting:
            nxt = self.waiting.popleft()
            if self.try_attach(nxt):
                self._queue_event("slot.queue.leave", nxt)
                break
            # No free slot after all (cannot happen: we just freed one).
            self.waiting.appendleft(nxt)
            break

    # ------------------------------------------------------------------
    # Guard views
    # ------------------------------------------------------------------

    def _matching(
        self,
        state: CallState,
        slot: int | None,
        when: Callable[..., bool] | None,
        values: Callable[[Call], tuple],
    ) -> list[Call]:
        candidates = (
            self.slots
            if slot is None
            else [self.slots[slot]] if 0 <= slot < self.array_size else []
        )
        out = []
        for call in candidates:
            if call is None or call.state != state:
                continue
            if when is None or when(*values(call)):
                out.append(call)
        return out

    def acceptable(
        self, slot: int | None, when: Callable[..., bool] | None, all_matches: bool = False
    ) -> Any:
        """ATTACHED call(s) matching ``slot`` and the acceptance condition.

        ``when`` is evaluated on the intercepted-parameter subsequence —
        the SR-style "receive into temporaries, then test" of §2.4.  A
        quantified guard with a ``pri`` clause needs every candidate
        (``all_matches=True``) to pick the minimum among them.
        """
        matches = self._matching(
            CallState.ATTACHED, slot, when, lambda c: c.intercepted_args
        )
        if all_matches:
            return matches
        return matches[0] if matches else None

    def awaitable(
        self, slot: int | None, when: Callable[..., bool] | None, all_matches: bool = False
    ) -> Any:
        """BODY_DONE call(s) matching ``slot`` and the result condition."""
        matches = self._matching(
            CallState.BODY_DONE, slot, when, lambda c: c.intercepted_results
        )
        if all_matches:
            return matches
        return matches[0] if matches else None

    # ------------------------------------------------------------------
    # Body execution
    # ------------------------------------------------------------------

    def start_body(self, call: Call, managed: bool) -> None:
        """Dispatch the body of ``call`` onto a server process.

        ``managed`` bodies report BODY_DONE and wait for ``finish``;
        unmanaged (non-intercepted) bodies deliver results directly.
        """
        runtime = self

        def job():
            try:
                if runtime.spec.work:
                    from ..kernel.syscalls import Charge

                    yield Charge(runtime.spec.work, label=runtime.spec.name)
                raw = runtime.spec.fn(runtime.obj, *call.args, *call.hidden_args)
                if hasattr(raw, "send") and hasattr(raw, "throw"):
                    raw = yield from raw
                results = runtime.spec.normalize_results(raw)
            except GeneratorExit:
                # The server process was killed (node crash): whoever
                # killed it owns cleanup and caller notification; the
                # caller must not receive a GeneratorExit.
                raise
            except BaseException as exc:
                # A failing body must not wedge the object: free the slot
                # and worker, and re-raise the error in the caller.
                runtime.pool.release(call)
                if call.slot is not None:
                    runtime.detach(call)
                runtime.fail_caller(call, exc)
                return
            call.body_results = results
            call.body_done_at = runtime.kernel.clock.now
            runtime.observe_service(call)
            if managed:
                call.state = CallState.BODY_DONE
                runtime.kernel.notify(runtime.completion)
                # The server process conceptually lives until the manager
                # executes finish (§2.3: "both the finish P(...) and P
                # terminate together").  The finish primitive resumes the
                # caller and releases the worker; this generator ends here
                # but the pool slot stays occupied until release().
            else:
                runtime.complete_unmanaged(call)

        call.state = CallState.STARTED
        call.started_at = self.kernel.clock.now
        self.kernel.stats.starts += 1
        self.pool.dispatch(job, call)

    def complete_unmanaged(self, call: Call) -> None:
        """Finish a non-intercepted call: results flow straight back."""
        call.state = CallState.DONE
        call.finished_at = self.kernel.clock.now
        self.kernel.stats.calls_completed += 1
        self.pool.release(call)
        if call.slot is not None:
            self.detach(call)
            # With no manager to accept them, newly attached waiting calls
            # must be started here.
            for queued in self.slots:
                if queued is not None and queued.state == CallState.ATTACHED:
                    self.start_body(queued, managed=False)
        self.record(call)
        self.resume_caller(call, call.body_results[: self.spec.returns])

    def resume_caller(self, call: Call, results: tuple) -> None:
        """Deliver ``results`` (definition results only) to the caller.

        A caller is resumed at most once: if the call already expired (a
        timed call), or was failed by crash detection, the response is
        discarded.  With a fault injector installed, the response leg may
        itself be lost or jittered.
        """
        if call.caller_resumed:
            return
        faults = self.kernel.faults
        if faults is not None and faults.drop_response(call):
            # Response lost in the network; the caller recovers through a
            # timeout (plus retry), never through a silent double-resume.
            return
        call.caller_resumed = True
        if call.timeout_cancel is not None:
            call.timeout_cancel["cancelled"] = True
        if call.deadline_cancel is not None:
            call.deadline_cancel["cancelled"] = True
        value: Any
        if self.spec.returns == 0:
            value = None
        elif self.spec.returns == 1:
            value = results[0]
        else:
            value = tuple(results)
        if call.response_delay:
            kernel = self.kernel
            # The caller-perceived completion includes the response leg.
            if call.finished_at is not None:
                call.finished_at += call.response_delay
            kernel.post(
                kernel.clock.now + call.response_delay,
                lambda: kernel.schedule_resume(call.caller, value),
                priority=call.caller.priority,
            )
        else:
            self.kernel.schedule_resume(call.caller, value)
        if self.kernel.obs.enabled:
            self.kernel.obs.complete_call(call, status="ok")

    def fail_caller(
        self, call: Call, exc: BaseException, status: str = "error"
    ) -> None:
        """Propagate a body failure to the caller (at most once).

        ``status`` labels the call's root span on completion — ``"error"``
        for body failures, ``"shed"`` when admission control rejected it.
        """
        call.state = CallState.FAILED
        if call.caller_resumed:
            return
        call.caller_resumed = True
        if call.timeout_cancel is not None:
            call.timeout_cancel["cancelled"] = True
        if call.deadline_cancel is not None:
            call.deadline_cancel["cancelled"] = True
        if self.kernel.obs.enabled:
            self.kernel.obs.complete_call(call, status=status)
        self.kernel.schedule_throw(call.caller, exc)

    def observe_service(self, call: Call) -> None:
        """Fold one completed body's service time into the EWMA."""
        start = call.dispatched_at if call.dispatched_at is not None else call.started_at
        if start is None or call.body_done_at is None:
            return
        sample = call.body_done_at - start
        self.service_estimator.update(sample)

    def record(self, call: Call) -> None:
        if self.record_calls:
            self.completed.append(call)

    def reset(self) -> None:
        """Forget all in-flight calls (crash recovery; see ``AlpsObject.restart``)."""
        self.slots = [None] * self.array_size
        self.waiting.clear()

    def describe(self) -> str:
        return (
            f"{self.spec.name}[1..{self.array_size}] "
            f"attached={sum(1 for s in self.slots if s is not None)} "
            f"waiting={len(self.waiting)}"
        )


def arity_error(spec: "EntrySpec", got: int) -> CallError:
    return CallError(
        f"{spec.name} expects {spec.params} argument(s) "
        f"(plus {spec.hidden_params} hidden), got {got}"
    )
