"""Server-process pool strategies (§3 Implementation Issues).

The paper discusses three ways to provide the process that executes a
started entry body:

* **dynamic** — create a (lightweight) process at ``start`` time; simple,
  but expensive "in many operating systems [where] dynamic process
  creation is expensive";
* **per-slot** — preallocate one process per element of the hidden
  procedure array ``P[1..N]`` when the object is created; the mapping
  between procedures and processes is one-to-one;
* **shared** — preallocate a pool of ``M << N`` processes and assign one
  to a call "at the time it is started rather than when the call arrives",
  attractive "for resources in high demand where the average queue length
  is significant".

The paper says "the programmer may be allowed to choose between these
alternative implementations using compiler switches"; here the switch is
the ``pool=`` argument to the object constructor.  Benchmark E6 sweeps the
strategies.

A worker is considered busy from ``start`` until the manager ``finish``es
the call ("both the finish P(...) and P terminate together", §2.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..errors import ObjectModelError
from ..kernel.process import PRIORITY_NORMAL

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from .calls import Call


@dataclass(frozen=True)
class PoolConfig:
    """The "compiler switch": which strategy an object uses for servers.

    ``mode`` is ``"dynamic"``, ``"per-slot"`` or ``"shared"``; ``size``
    is required for ``"shared"`` (the paper's ``M``); ``lightweight``
    selects the process-creation cost class charged for workers.
    """

    mode: str = "dynamic"
    size: int | None = None
    lightweight: bool = True
    priority: int = PRIORITY_NORMAL

    def __post_init__(self) -> None:
        if self.mode not in ("dynamic", "per-slot", "shared"):
            raise ObjectModelError(f"unknown pool mode {self.mode!r}")
        if self.mode == "shared" and (self.size is None or self.size < 1):
            raise ObjectModelError("shared pool requires size >= 1")


DYNAMIC = PoolConfig("dynamic")


class ServerPool:
    """Dispatches body jobs onto server processes according to a strategy.

    ``dispatch(job, call)`` runs ``job`` (a generator function) on some
    process as soon as a worker is available; ``release(call)`` marks the
    call's worker free again.  Jobs queue FIFO when all workers are busy,
    which is exactly the §3 behaviour for the shared pool.
    """

    def __init__(self, kernel: "Kernel", name: str, config: PoolConfig, slots: int) -> None:
        self.kernel = kernel
        self.name = name
        self.config = config
        #: Total slots across all entry arrays (used by per-slot sizing).
        self.slots = slots
        if config.mode == "dynamic":
            self.capacity: int | None = None
        elif config.mode == "per-slot":
            self.capacity = slots
        else:
            self.capacity = config.size
        self._busy = 0
        self._backlog: deque[tuple[Callable[[], Any], "Call"]] = deque()
        #: Calls currently holding a worker, in dispatch order — the
        #: wait-for graph names them when backlogged callers queue behind
        #: a saturated pool.
        self.active: list["Call"] = []
        #: Lifetime counters for benchmarks.
        self.dispatched = 0
        self.queued_starts = 0
        self.max_busy = 0
        if self.capacity is not None:
            # Preallocation cost: the kernel charges creation for each
            # worker up front, reproducing the §3 startup-cost trade-off.
            cost = (
                kernel.costs.lwp_create
                if config.lightweight
                else kernel.costs.process_create
            )
            kernel.stats.spawns += self.capacity
            if config.lightweight:
                kernel.stats.lwp_spawns += self.capacity
            self.preallocation_cost = cost * self.capacity
        else:
            self.preallocation_cost = 0

    @property
    def busy(self) -> int:
        return self._busy

    @property
    def backlog(self) -> int:
        return len(self._backlog)

    def dispatch(self, job: Callable[[], Any], call: "Call") -> None:
        """Run ``job`` for ``call`` now, or queue it until a worker frees."""
        if self.capacity is not None and self._busy >= self.capacity:
            self._backlog.append((job, call))
            self.queued_starts += 1
            return
        self._run(job, call)

    def _run(self, job: Callable[[], Any], call: "Call") -> None:
        call.dispatched_at = self.kernel.clock.now
        self.active.append(call)
        self._busy += 1
        self.max_busy = max(self.max_busy, self._busy)
        self.dispatched += 1
        name = f"{self.name}.{call.entry}[{call.slot}]#{call.call_id}"
        if self.capacity is None:
            # Dynamic creation: the per-start creation cost is charged on
            # the caller's behalf and delays the body's first dispatch
            # (§3: "dynamic process creation is expensive").
            proc = self.kernel.spawn(
                job,
                name=name,
                priority=self.config.priority,
                lightweight=self.config.lightweight,
                daemon=True,
                charge_to=call.caller,
            )
        else:
            # Preallocated workers were charged at pool construction;
            # dispatching onto one is free of creation cost.
            proc = self.kernel.spawn(
                job,
                name=name,
                priority=self.config.priority,
                lightweight=True,
                daemon=True,
            )
            self.kernel.stats.spawns -= 1  # reuse, not a new process
            self.kernel.stats.lwp_spawns -= 1
        # Server processes live where the object lives; a node crash must
        # take executing bodies down with it.
        proc.node = getattr(call.obj, "node", None)
        # Entry calls issued from inside the body (nested calls) parent
        # under this call's span; None whenever spans are disabled.
        proc.span = call.span
        # Nested calls inherit the remaining end-to-end budget: a body
        # serving a deadlined call cannot grant its callees more time
        # than its own caller has left (deadline propagation).
        proc.deadline_at = call.deadline_at
        call.body_process = proc

    def release(self, call: "Call") -> None:
        """The call finished; free its worker and start a queued job."""
        self._busy -= 1
        try:
            self.active.remove(call)
        except ValueError:
            pass  # crash recovery may have reset the roster already
        if self._backlog and (self.capacity is None or self._busy < self.capacity):
            job, queued_call = self._backlog.popleft()
            self._run(job, queued_call)

    def queued_calls(self) -> list["Call"]:
        """Calls backlogged behind a saturated pool, FIFO order."""
        return [call for _job, call in self._backlog]

    def reset(self) -> None:
        """Drop all busy/queued state (crash recovery)."""
        self._busy = 0
        self._backlog.clear()
        self.active.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ServerPool {self.name} mode={self.config.mode} "
            f"busy={self._busy}/{self.capacity} backlog={len(self._backlog)}>"
        )
