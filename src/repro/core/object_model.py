"""The ALPS object model (§2.2): ``AlpsObject`` and its metaclass.

An object class collects:

* entry procedures (``@entry``) and local procedures (``@local``) — the
  implementation part; the definition part is derived
  (:meth:`AlpsObject.definition`);
* an optional manager (``@manager_process``);
* initialization code — the ``setup()`` hook, "implicitly executed when
  the object is created", before the manager starts;
* shared data — ordinary instance attributes, shared by all procedure
  bodies and the manager (they run in one address space, §3).

Instances are bound to a kernel at creation::

    buffer = BoundedBuffer(kernel, name="buf", size=10)

and callers invoke entries with ``yield buffer.deposit(msg)``.

The present version of ALPS gives each object "a single instance" per
declaration; like the paper's anticipated extension, instantiating the
class several times simply creates several independent objects.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Callable

from ..errors import ObjectModelError
from ..kernel.process import Process
from .entry import EntrySpec, ObjectDefinition
from .manager import ManagerSpec
from .pool import DYNAMIC, PoolConfig, ServerPool
from .primitives import EntryCall, accept, await_call, execute_call
from .runtime import EntryRuntime

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


class BoundEntry:
    """``obj.deposit`` — calling it builds the :class:`EntryCall` syscall."""

    __slots__ = ("obj", "name")

    def __init__(self, obj: "AlpsObject", name: str) -> None:
        self.obj = obj
        self.name = name

    def __call__(
        self,
        *args: Any,
        timeout: int | None = None,
        deadline: int | None = None,
    ) -> EntryCall:
        return EntryCall(self.obj, self.name, args, timeout=timeout, deadline=deadline)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<entry {self.obj.alps_name}.{self.name}>"


class _EntryDescriptor:
    """Class attribute standing in for an entry; binds on access."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        return BoundEntry(obj, self.name)


class AlpsObjectMeta(type):
    """Collects entry/local/manager declarations from the class body."""

    def __new__(mcls, name: str, bases: tuple, namespace: dict) -> type:
        entries: dict[str, EntrySpec] = {}
        manager: ManagerSpec | None = None
        # Inherit declarations (copied so subclass intercepts don't leak).
        for base in bases:
            base_entries = getattr(base, "__alps_entries__", None)
            if base_entries:
                entries.update(base_entries)
            base_manager = getattr(base, "__alps_manager__", None)
            if base_manager is not None:
                manager = base_manager

        for key, value in list(namespace.items()):
            if isinstance(value, EntrySpec):
                if value.name != key:
                    raise ObjectModelError(
                        f"{name}.{key}: entry declared under a different "
                        f"name ({value.name})"
                    )
                entries[key] = value
                namespace[key] = _EntryDescriptor(key)
            elif isinstance(value, ManagerSpec):
                if manager is not None and manager in namespace.values():
                    raise ObjectModelError(f"{name}: more than one manager")
                manager = value
                namespace[key] = value  # kept for introspection

        # Per-class copies so assigning intercepts cannot mutate a parent.
        entries = {k: copy.copy(v) for k, v in entries.items()}
        for spec in entries.values():
            spec.intercept = None
        if manager is not None:
            manager.validate(entries, owner=name)
            for proc_name, intercept in manager.intercepts.items():
                entries[proc_name].intercept = intercept
        else:
            for spec in entries.values():
                if spec.hidden_params or spec.hidden_results:
                    raise ObjectModelError(
                        f"{name}.{spec.name}: hidden parameters/results "
                        f"require a manager (§2.8)"
                    )

        cls = super().__new__(mcls, name, bases, namespace)
        cls.__alps_entries__ = entries
        cls.__alps_manager__ = manager
        return cls


class AlpsObject(metaclass=AlpsObjectMeta):
    """Base class for ALPS objects.

    Parameters
    ----------
    kernel:
        The kernel this object (and its manager) runs on.
    name:
        Instance name for traces and diagnostics.
    pool:
        Server-process strategy (§3): a :class:`~repro.core.pool.PoolConfig`;
        defaults to dynamic creation.
    manager_priority:
        Override the manager's priority (benchmark E7 lowers it to show
        why the paper wants it high).
    record_calls:
        Keep completed :class:`~repro.core.calls.Call` records for metrics.
    **config:
        Forwarded to :meth:`setup` — the object's initialization code.
    """

    __alps_entries__: dict[str, EntrySpec] = {}
    __alps_manager__: ManagerSpec | None = None

    def __init__(
        self,
        kernel: "Kernel",
        *,
        name: str | None = None,
        pool: PoolConfig | None = None,
        manager_priority: int | None = None,
        record_calls: bool = False,
        **config: Any,
    ) -> None:
        self.kernel = kernel
        self.alps_name = name or type(self).__name__
        # Registered so the wait-for graph can scan hidden procedure
        # arrays for exhaustion (kernels created before this field existed
        # are tolerated for pickled/stubbed kernels in tests).
        registry = getattr(kernel, "_alps_objects", None)
        if registry is not None:
            registry.append(self)
        #: Set by the network layer when the object is placed on a node.
        self.node = None
        #: Set by the fault injector when this object's node crashes;
        #: cleared by :meth:`restart`.
        self._crashed = False
        self._manager_priority = manager_priority
        self._record_calls = record_calls
        # Initialization code runs first (§2.3: "its initialization code
        # is first executed and then its manager process is implicitly
        # created and started").
        self.setup(**config)

        slots_total = sum(
            spec.resolve_array(self) for spec in self.__alps_entries__.values()
        )
        self._pool = ServerPool(
            kernel, self.alps_name, pool or DYNAMIC, slots=slots_total
        )
        self._runtimes: dict[str, EntryRuntime] = {}
        for entry_name, spec in self.__alps_entries__.items():
            runtime = EntryRuntime(self, spec, kernel, self._pool)
            runtime.record_calls = record_calls
            self._runtimes[entry_name] = runtime

        self.manager_process: Process | None = None
        self._spawn_manager()

    # -- initialization hook ----------------------------------------------

    def setup(self, **config: Any) -> None:
        """The object's initialization code (override in subclasses).

        The default accepts keyword configuration and stores each item as
        an attribute, so simple objects need no boilerplate.
        """
        for key, value in config.items():
            setattr(self, key, value)

    def _spawn_manager(self) -> None:
        manager = self.__alps_manager__
        if manager is None:
            return
        priority = (
            self._manager_priority
            if self._manager_priority is not None
            else manager.priority
        )
        self.manager_process = self.kernel.spawn(
            manager.fn,
            self,
            name=f"{self.alps_name}.manager",
            priority=priority,
            daemon=True,
        )
        # Keep the manager attributed to the object's home node so a node
        # crash takes it down (place() sets this for objects placed later).
        self.manager_process.node = self.node

    def restart(self) -> None:
        """Recover a crashed object: reset call state, respawn the manager.

        Every in-flight call is forgotten (the fault injector hands the
        interrupted ones to a :class:`~repro.stdlib.Supervisor`, which may
        re-queue them); shared data — ordinary instance attributes — is
        preserved, modelling stable storage surviving the crash.
        """
        for runtime in self._runtimes.values():
            runtime.reset()
        self._pool.reset()
        self._crashed = False
        if self.manager_process is None or not self.manager_process.alive:
            self._spawn_manager()

    # -- shared-data transfer (used by repro.replication) -------------------

    #: Infrastructure attributes excluded from :meth:`state_snapshot`.
    _SNAPSHOT_SKIP = frozenset({"kernel", "node", "manager_process", "alps_name"})

    def state_snapshot(self) -> dict:
        """Deep-copy the object's shared data for transfer to a peer.

        Shared data is every public instance attribute — the same state
        :meth:`restart` preserves across a crash (the stable-storage
        model).  Kernel plumbing (kernel, node, manager, runtimes, pool)
        and the instance name are excluded, so a snapshot taken from one
        replica can be installed into another instance of the same class
        with :meth:`state_restore`.  Attribute values must be
        deep-copyable.
        """
        return copy.deepcopy(
            {
                key: value
                for key, value in self.__dict__.items()
                if not key.startswith("_") and key not in self._SNAPSHOT_SKIP
            }
        )

    def state_restore(self, snapshot: dict) -> None:
        """Install a :meth:`state_snapshot` taken from a peer replica."""
        for key, value in copy.deepcopy(snapshot).items():
            setattr(self, key, value)

    def exported_entries(self) -> list[str]:
        """Names of the entries callable from outside (proxy surface)."""
        return [
            name for name, spec in self.__alps_entries__.items() if spec.exported
        ]

    # -- plumbing used by primitives ---------------------------------------

    def _entry_runtime(self, proc_name: str) -> EntryRuntime:
        runtime = self._runtimes.get(proc_name)
        if runtime is None:
            raise ObjectModelError(
                f"{self.alps_name} has no procedure {proc_name!r} "
                f"(has: {sorted(self._runtimes)})"
            )
        return runtime

    def _call_latency(self, caller: Process) -> tuple[int, int]:
        """(request, response) network delay for a call from ``caller``."""
        node = self.node
        if node is None:
            return (0, 0)
        caller_node = getattr(caller, "node", None)
        if caller_node is None or caller_node is node:
            return (0, 0)
        latency = node.network.latency(caller_node, node)
        return (latency, latency)

    # -- manager-side conveniences ------------------------------------------

    def pending(self, proc_name: str) -> int:
        """The paper's ``#P`` notation: number of pending calls (§2.5.1)."""
        return self._entry_runtime(proc_name).pending_count()

    def accept(self, proc_name: str, slot: int | None = None, when: Callable[..., bool] | None = None):
        """Blocking ``accept`` (sugar for a one-guard select)."""
        return accept(self, proc_name, slot=slot, when=when)

    def await_(self, proc_name: str, slot: int | None = None, when: Callable[..., bool] | None = None, call=None):
        """Blocking ``await`` (sugar for a one-guard select)."""
        return await_call(self, proc_name, slot=slot, when=when, call=call)

    def execute(self, call, *hidden: Any):
        """Packaged ``execute`` (§2.3); use as ``yield from self.execute(c)``."""
        return execute_call(call, *hidden)

    def call(
        self, proc_name: str, *args: Any, deadline: int | None = None
    ) -> EntryCall:
        """Invoke an entry or *local* procedure from inside the object."""
        return EntryCall(self, proc_name, args, from_inside=True, deadline=deadline)

    # -- introspection ---------------------------------------------------------

    def definition(self) -> ObjectDefinition:
        """The definition part (§2.2): exported procedures only."""
        exported = [
            name for name, spec in self.__alps_entries__.items() if spec.exported
        ]
        return ObjectDefinition(
            name=self.alps_name,
            procedures=tuple(exported),
            signatures={
                name: self.__alps_entries__[name].signature() for name in exported
            },
        )

    @property
    def pool(self) -> ServerPool:
        return self._pool

    def completed_calls(self, proc_name: str | None = None):
        """Completed call records (requires ``record_calls=True``)."""
        if proc_name is not None:
            return list(self._entry_runtime(proc_name).completed)
        out = []
        for runtime in self._runtimes.values():
            out.extend(runtime.completed)
        out.sort(key=lambda c: (c.finished_at, c.call_id))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AlpsObject {self.alps_name}>"
