"""Metrics helpers over completed calls and kernel stats.

The manager "provides a facility for pre- and post-processing of entry
calls which can be used not only to implement scheduling but also to
monitor the object" (§1).  These helpers compute the summary numbers the
benchmark harness prints for each experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .calls import Call


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a sequence of durations (virtual ticks)."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: int
    minimum: int

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, 0.0, 0.0, 0.0, 0, 0)

    def row(self) -> dict:
        return {
            "n": self.count,
            "mean": round(self.mean, 2),
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
        }


def percentile(sorted_values: Sequence[int], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = fraction * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(sorted_values[low])
    weight = rank - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def summarize(durations: Iterable[int]) -> LatencySummary:
    values = sorted(d for d in durations if d is not None)
    if not values:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        median=percentile(values, 0.5),
        p95=percentile(values, 0.95),
        maximum=values[-1],
        minimum=values[0],
    )


def response_times(calls: Iterable[Call]) -> LatencySummary:
    """Response-time summary (issue → finish) over completed calls."""
    return summarize(c.response_time for c in calls if c.response_time is not None)


def queue_times(calls: Iterable[Call]) -> LatencySummary:
    """Queueing-delay summary (issue → accept) over completed calls."""
    return summarize(c.queue_time for c in calls if c.queue_time is not None)


def throughput(completed: int, elapsed: int) -> float:
    """Completed operations per 1000 ticks of virtual time."""
    if elapsed <= 0:
        return 0.0
    return completed * 1000.0 / elapsed


def max_overlap(intervals: Iterable[tuple[int, int]]) -> int:
    """Maximum number of simultaneously active intervals.

    Used to verify concurrency claims (e.g. "up to ReadMax readers access
    the database simultaneously", §2.5.1).
    """
    events: list[tuple[int, int]] = []
    for start, end in intervals:
        events.append((start, 1))
        events.append((end, -1))
    # Ends sort before starts at the same instant: back-to-back intervals
    # do not count as overlapping.
    events.sort(key=lambda e: (e[0], e[1]))
    active = 0
    peak = 0
    for _t, delta in events:
        active += delta
        peak = max(peak, active)
    return peak


def service_intervals(calls: Iterable[Call]) -> list[tuple[int, int]]:
    """(started_at, body_done_at) for every call whose body ran."""
    out = []
    for call in calls:
        if call.started_at is not None and call.body_done_at is not None:
            out.append((call.started_at, call.body_done_at))
    return out
