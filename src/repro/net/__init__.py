"""Simulated distributed substrate: nodes, topologies, remote calls (§1, §4)."""

from .network import Network, Node, node_of
from .placement import choose_nodes, node_load
from .rpc import NetChannel, NetSend
from .topologies import full_mesh, hypercube, ring, star, transputer_grid

__all__ = [
    "Network",
    "Node",
    "node_of",
    "choose_nodes",
    "node_load",
    "NetChannel",
    "NetSend",
    "transputer_grid",
    "ring",
    "star",
    "full_mesh",
    "hypercube",
]
