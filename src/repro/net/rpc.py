"""Remote communication: cross-node message passing.

Remote *procedure calls* need no special syntax — placing an ALPS object
on a node (``node.place(obj)``) makes every call from a process on a
different node pay request/response latency automatically (the hook is
``AlpsObject._call_latency``).  This module adds the message-passing
half: ``NetSend`` delivers to a channel homed on another node after the
network delay, so "a user can further communicate with an executing
remote procedure using message passing on point-to-point channels" (§1)
works across the simulated machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..channels.channel import Channel
from ..errors import ChannelError
from ..kernel.syscalls import Syscall
from .network import Node, node_of

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class NetChannel(Channel):
    """A channel homed on a node; remote sends pay network latency."""

    def __init__(self, home: Node, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.node = home
        home.objects[self.name] = self


class NetSend(Syscall):
    """``send C(v...)`` where C may be homed on a remote node.

    The sender continues immediately (asynchronous send); the message
    materializes in the channel after the network delay.  ``size`` scales
    the delay for long messages.
    """

    __slots__ = ("channel", "values", "size")

    def __init__(self, channel: Channel, *values: Any, size: int = 1) -> None:
        self.channel = channel
        self.values = values
        self.size = size

    def handle(self, kernel: "Kernel", proc: "Process", cost: int) -> None:
        channel = self.channel
        if channel.closed:
            kernel.schedule_throw(
                proc, ChannelError(f"send on closed channel {channel.name}")
            )
            return
        try:
            channel.check(self.values)
        except ChannelError as exc:
            kernel.schedule_throw(proc, exc)
            return
        home = getattr(channel, "node", None)
        sender_node = node_of(proc)

        def deliver() -> None:
            channel._enqueue(self.values)
            kernel.notify(channel)

        # One logical send == one sends tick, charged at send time.  Wire
        # transmissions (including fault-injected duplicates) are counted
        # separately under rpc.messages; previously each *delivery* bumped
        # sends, double-counting duplicated messages.
        kernel.stats.sends += 1
        remote = home is not None and sender_node is not None and home is not sender_node
        faults = kernel.faults
        if remote:
            rpc_messages = kernel.metrics.counter(
                "rpc.messages", "Cross-node message transmissions (incl. duplicates)"
            )
        if faults is not None and remote:
            # The injector decides this message's fate: zero, one (possibly
            # jittered) or two (duplicated) deliveries.
            fates = faults.message_fates(proc, sender_node, home, self.size)
            rpc_messages.inc(len(fates))
            for delay in fates:
                if delay:
                    kernel.post(kernel.clock.now + delay, deliver)
                else:
                    deliver()
        else:
            delay = 0
            if remote:
                rpc_messages.inc()
                delay = home.network.latency(sender_node, home, size=self.size)
            if delay:
                kernel.post(kernel.clock.now + delay, deliver)
            else:
                deliver()
        kernel.schedule_resume(proc, None, cost=cost + kernel.costs.send)
