"""Fault-aware node selection for object placement.

``place`` is a per-node operation; this module answers the question that
precedes it: *which* nodes?  :func:`choose_nodes` ranks candidates by
liveness and load so replicas (or pool growth) steer away from nodes
that a :class:`~repro.faults.Heartbeat` or the installed fault runtime
currently believes are down, and spread across distinct nodes instead of
piling onto one.

The ranking is deterministic: (believed-down, load, insertion order).
Down nodes are still *eligible* — a detector can be wrong, and a caller
asking for more replicas than there are healthy nodes should get a
degraded placement rather than an error — they just rank last.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.detect import Heartbeat
    from .network import Network, Node


def node_load(node: "Node") -> int:
    """Placement pressure on a node: how many objects already live there."""
    return len(node.objects)


def choose_nodes(
    network: "Network",
    count: int,
    heartbeat: "Heartbeat | None" = None,
    avoid: Iterable[str] = (),
) -> list["Node"]:
    """Pick ``count`` distinct nodes, preferring live and lightly loaded ones.

    Parameters
    ----------
    heartbeat:
        Optional detector whose per-*node-name* verdicts demote nodes it
        believes are down (watch targets under their node names to use
        this).  The installed fault runtime's ground truth, when present,
        demotes known-down nodes as well.
    avoid:
        Node names never to choose (e.g. the node a Supervisor lives on,
        or nodes already hosting a co-location-averse peer).

    Returns the chosen nodes, best first; raises
    :class:`~repro.errors.NetworkError` when fewer than ``count``
    distinct candidates exist (co-location is never an acceptable
    fallback for replicas).
    """
    if count < 1:
        raise NetworkError(f"choose_nodes: count must be >= 1, got {count}")
    avoided = set(avoid)
    candidates = [n for n in network.nodes() if n.name not in avoided]
    if len(candidates) < count:
        raise NetworkError(
            f"choose_nodes: need {count} distinct nodes but only "
            f"{len(candidates)} are available (avoid={sorted(avoided)})"
        )

    def believed_down(node: "Node") -> bool:
        if heartbeat is not None and heartbeat.status.get(node.name) == "down":
            return True
        faults = network.faults
        return faults is not None and not faults.node_up(node.name)

    # Stable sort: insertion order breaks ties deterministically.
    ranked = sorted(candidates, key=lambda n: (believed_down(n), node_load(n)))
    return ranked[:count]
