"""Topology builders, including the paper's target machine.

§4: "The ALPS kernel is currently being implemented in C on a 16-node
transputer network."  A T800 transputer has four bidirectional links, so
the canonical 16-node arrangement is a 4×4 grid (optionally wrapped into
a torus).  Builders for rings, stars, and full meshes cover the other
machines the paper mentions (Encore/Multimax, iPSC hypercube, Butterfly).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import NetworkError
from .network import Network, Node

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


def transputer_grid(
    kernel: "Kernel",
    rows: int = 4,
    cols: int = 4,
    link_latency: int = 1,
    torus: bool = False,
    cpus_per_node: int | None = None,
) -> Network:
    """A rows×cols transputer grid (default: the paper's 16 nodes).

    Node names are ``t<r>_<c>``; each chip uses at most its four links
    (grid neighbours), faithfully to transputer hardware.
    ``cpus_per_node`` gives every node its own scheduling domain of that
    many CPUs (a T800 is one CPU; larger counts model SMP nodes).
    """
    if rows < 1 or cols < 1:
        raise NetworkError(f"grid must be at least 1x1, got {rows}x{cols}")
    net = Network(kernel, name=f"transputer{rows}x{cols}")
    grid: list[list[Node]] = [
        [net.add_node(f"t{r}_{c}", cpus=cpus_per_node) for c in range(cols)]
        for r in range(rows)
    ]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.connect(grid[r][c], grid[r][c + 1], link_latency)
            elif torus and cols > 2:
                net.connect(grid[r][c], grid[r][0], link_latency)
            if r + 1 < rows:
                net.connect(grid[r][c], grid[r + 1][c], link_latency)
            elif torus and rows > 2:
                net.connect(grid[r][c], grid[0][c], link_latency)
    return net


def ring(
    kernel: "Kernel",
    size: int,
    link_latency: int = 1,
    cpus_per_node: int | None = None,
) -> Network:
    """A ring of ``size`` nodes named ``n0 .. n<size-1>``."""
    if size < 2:
        raise NetworkError(f"ring needs >= 2 nodes, got {size}")
    net = Network(kernel, name=f"ring{size}")
    nodes = [net.add_node(f"n{i}", cpus=cpus_per_node) for i in range(size)]
    for i in range(size):
        net.connect(nodes[i], nodes[(i + 1) % size], link_latency)
    return net


def star(
    kernel: "Kernel",
    leaves: int,
    link_latency: int = 1,
    cpus_per_node: int | None = None,
) -> Network:
    """A hub node ``hub`` with ``leaves`` spokes ``n0..``."""
    if leaves < 1:
        raise NetworkError(f"star needs >= 1 leaf, got {leaves}")
    net = Network(kernel, name=f"star{leaves}")
    hub = net.add_node("hub", cpus=cpus_per_node)
    for i in range(leaves):
        net.connect(hub, net.add_node(f"n{i}", cpus=cpus_per_node), link_latency)
    return net


def full_mesh(
    kernel: "Kernel",
    size: int,
    link_latency: int = 1,
    cpus_per_node: int | None = None,
) -> Network:
    """Every node linked to every other (shared-bus approximation)."""
    if size < 2:
        raise NetworkError(f"mesh needs >= 2 nodes, got {size}")
    net = Network(kernel, name=f"mesh{size}")
    nodes = [net.add_node(f"n{i}", cpus=cpus_per_node) for i in range(size)]
    for i in range(size):
        for j in range(i + 1, size):
            net.connect(nodes[i], nodes[j], link_latency)
    return net


def hypercube(
    kernel: "Kernel",
    dimension: int,
    link_latency: int = 1,
    cpus_per_node: int | None = None,
) -> Network:
    """A 2^d-node hypercube (the Intel iPSC shape the paper mentions)."""
    if dimension < 1:
        raise NetworkError(f"hypercube dimension must be >= 1, got {dimension}")
    net = Network(kernel, name=f"hypercube{dimension}")
    size = 1 << dimension
    nodes = [net.add_node(f"n{i:0{dimension}b}", cpus=cpus_per_node) for i in range(size)]
    for i in range(size):
        for bit in range(dimension):
            j = i ^ (1 << bit)
            if j > i:
                net.connect(nodes[i], nodes[j], link_latency)
    return net
