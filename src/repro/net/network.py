"""Simulated multi-node network.

The paper targets distributed systems: "Calls to the entry procedures of
an object are implemented as remote procedure calls" (§1) and "The ALPS
kernel is currently being implemented in C on a 16-node transputer
network" (§4).  We model the machine as a graph of nodes joined by links
with integer latencies.  Placing an object on a node makes calls from
processes on other nodes pay the (shortest-path) request and response
latency; message passing to channels homed on a node pays the same.

Routing is static shortest-path (computed by Dijkstra at first use and
cached; topology changes invalidate the cache).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class Node:
    """One machine in the simulated network."""

    def __init__(self, network: "Network", name: str, cpus: int | None = None) -> None:
        self.network = network
        self.name = name
        #: Objects placed here (name → object), for diagnostics.
        self.objects: dict[str, Any] = {}
        #: Declared CPU count; None inherits the kernel-wide default
        #: machine.  A count gives this node its own scheduling domain
        #: (:mod:`repro.kernel.sched`): processes homed here contend on
        #: node-local per-CPU runqueues, and load never balances across
        #: nodes — they are separate machines.
        self.cpus = cpus

    def spawn(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> "Process":
        """Spawn a process whose home is this node."""
        proc = self.network.kernel.spawn(fn, *args, **kwargs)
        proc.node = self
        self.network._process_nodes[proc.pid] = self
        return proc

    def place(self, obj: Any) -> Any:
        """Place an ALPS object (or channel) on this node; returns it."""
        obj.node = self
        name = getattr(obj, "alps_name", None) or getattr(obj, "name", repr(obj))
        self.objects[name] = obj
        # The object's manager lives on this node too: a node crash must
        # take it down together with the placed object.
        manager = getattr(obj, "manager_process", None)
        if manager is not None:
            manager.node = self
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name}>"


def node_of(proc: "Process") -> Node | None:
    """The home node of a process, if it has one."""
    return proc.node


class Network:
    """A weighted graph of :class:`Node` objects with latency queries."""

    def __init__(self, kernel: "Kernel", name: str = "net") -> None:
        self.kernel = kernel
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._links: dict[str, dict[str, int]] = {}
        self._routes: dict[str, dict[str, int]] | None = None
        self._routes_epoch = -1
        self._process_nodes: dict[int, Node] = {}
        #: Fault injector, if installed (:func:`repro.faults.install`).
        #: Downed links/nodes are subtracted from the routed topology.
        self.faults: Any = None
        #: Total messages × hops carried (benchmark metric).  The hot
        #: path updates this plain attribute; the registry reads it
        #: lazily through a callback-backed gauge at snapshot time.
        self.traffic = 0
        kernel.metrics.gauge(
            f"net.{name}.traffic", "Messages × hops carried",
            fn=lambda: self.traffic,
        )

    # -- topology ---------------------------------------------------------

    def add_node(self, name: str, cpus: int | None = None) -> Node:
        """Add a node; ``cpus`` gives it a node-local scheduling domain."""
        if name in self._nodes:
            raise NetworkError(f"duplicate node {name!r}")
        node = Node(self, name, cpus=cpus)
        if cpus is not None:
            # Registration is keyed by node name kernel-wide, so a CPU
            # count may be declared once per name even across networks.
            self.kernel.cpu_scheduler.add_domain(name, cpus)
        self._nodes[name] = node
        self._links[name] = {}
        self._routes = None
        return node

    def connect(self, a: Node | str, b: Node | str, latency: int = 1) -> None:
        """Add a bidirectional link of the given latency."""
        name_a = a.name if isinstance(a, Node) else a
        name_b = b.name if isinstance(b, Node) else b
        if name_a not in self._nodes or name_b not in self._nodes:
            raise NetworkError(f"unknown node in connect({name_a!r}, {name_b!r})")
        if name_a == name_b:
            raise NetworkError(f"cannot link {name_a!r} to itself")
        if latency < 0:
            raise NetworkError(f"latency must be >= 0, got {latency}")
        self._links[name_a][name_b] = latency
        self._links[name_b][name_a] = latency
        self._routes = None

    def node(self, name: str) -> Node:
        node = self._nodes.get(name)
        if node is None:
            raise NetworkError(f"unknown node {name!r}")
        return node

    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    # -- routing ------------------------------------------------------------

    def _dijkstra(self, links: dict[str, dict[str, int]], source: str) -> dict[str, int]:
        dist = {source: 0}
        heap = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            for v, w in links.get(u, {}).items():
                nd = d + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def _ensure_routes(self) -> dict[str, dict[str, int]]:
        epoch = 0 if self.faults is None else self.faults.epoch
        if self._routes is None or epoch != self._routes_epoch:
            links = self._links
            if self.faults is not None:
                links = self.faults.filter_links(links)
            self._routes = {name: self._dijkstra(links, name) for name in self._nodes}
            self._routes_epoch = epoch
        return self._routes

    def latency_or_none(self, a: Node | str, b: Node | str, size: int = 1) -> int | None:
        """Like :meth:`latency`, but None instead of raising on no route.

        Used by the fault injector, for which an unreachable destination
        is a runtime condition (partition), not an API misuse.
        """
        name_a = a.name if isinstance(a, Node) else a
        name_b = b.name if isinstance(b, Node) else b
        if name_a == name_b:
            return 0
        routes = self._ensure_routes()
        dist = routes[name_a].get(name_b)
        if dist is None:
            return None
        self.traffic += dist
        return dist * max(1, size)

    def latency(self, a: Node | str, b: Node | str, size: int = 1) -> int:
        """Shortest-path latency between two nodes (0 for co-located).

        ``size`` scales the cost linearly: a message of ``size`` units
        takes ``size × path_latency`` — the simple store-and-forward model
        appropriate for transputer links.
        """
        result = self.latency_or_none(a, b, size=size)
        if result is None:
            name_a = a.name if isinstance(a, Node) else a
            name_b = b.name if isinstance(b, Node) else b
            raise NetworkError(f"no route from {name_a!r} to {name_b!r}")
        return result

    def diameter(self) -> int:
        """Largest shortest-path latency between any two nodes."""
        routes = self._ensure_routes()
        best = 0
        for src, dists in routes.items():
            for dst, d in dists.items():
                if dst != src:
                    best = max(best, d)
        return best
