"""Mesa-style monitors with condition variables, on the ALPS kernel.

§1: "The object/manager facility in ALPS is a generalization of the
well-known synchronization abstractions monitor [1,2] ..." and
"Monitor-like mutual exclusion can be implemented by programming the
manager to execute each request to completion before accepting another
request."  To measure that comparison we need real monitors on the same
substrate: one implicit lock per monitor, condition variables with
``wait``/``signal``/``broadcast`` and Mesa (signal-and-continue)
semantics, so waiters re-test their predicate in a loop.

Usage — bodies are generators::

    m = Monitor(kernel, "buf")
    not_full = m.condition("not_full")

    def deposit(item):
        yield from m.acquire()
        while count == size:
            yield from not_full.wait()
        ...
        not_empty.signal()
        yield from m.release()
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..errors import AlpsError
from .semaphore import P, Semaphore, V

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


class Condition:
    """A Mesa condition variable bound to a monitor."""

    def __init__(self, monitor: "Monitor", name: str) -> None:
        self.monitor = monitor
        self.name = name
        # Each waiter parks on its own binary semaphore, queued FIFO.
        self._waiters: deque[Semaphore] = deque()
        self.total_waits = 0
        self.total_signals = 0

    def wait(self):
        """Atomically release the monitor and wait; re-acquires on wake.

        Mesa semantics: between the signal and the re-acquisition other
        processes may enter the monitor, so callers must re-test their
        predicate in a ``while`` loop.
        """
        self.total_waits += 1
        ticket = Semaphore(0, name=f"{self.name}.wait")
        self._waiters.append(ticket)
        yield from self.monitor.release()
        yield P(ticket)
        yield from self.monitor.acquire()

    def signal(self):
        """Wake the longest-waiting process (no-op if none). Non-blocking.

        Returns a generator (yield from it) for symmetry with wait.
        """
        self.total_signals += 1
        if self._waiters:
            ticket = self._waiters.popleft()
            yield V(ticket)

    def broadcast(self):
        """Wake every waiter."""
        while self._waiters:
            yield from self.signal()

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class Monitor:
    """A monitor: implicit mutual-exclusion lock plus condition variables."""

    def __init__(self, kernel: "Kernel", name: str = "monitor") -> None:
        self.kernel = kernel
        self.name = name
        self._lock = Semaphore(1, name=f"{name}.lock")
        self._conditions: dict[str, Condition] = {}
        self._holder = None
        self.total_entries = 0

    def condition(self, name: str) -> Condition:
        """Create (or fetch) a named condition variable."""
        if name not in self._conditions:
            self._conditions[name] = Condition(self, name)
        return self._conditions[name]

    def acquire(self):
        """Enter the monitor (generator; ``yield from``)."""
        yield P(self._lock)
        self.total_entries += 1

    def release(self):
        """Leave the monitor."""
        if self._lock.value != 0:
            raise AlpsError(f"{self.name}: release without acquire")
        yield V(self._lock)

    def critical(self, body_gen):
        """Run a generator body inside the monitor (acquire/release)."""
        yield from self.acquire()
        try:
            result = yield from body_gen
        finally:
            # Note: generators interrupted by kernel-raised exceptions
            # still release, keeping the monitor usable.
            yield from self.release()
        return result
