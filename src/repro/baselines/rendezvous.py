"""Ada-style rendezvous tasks — the nested-call comparison of §2.3.

"Deadlock can be avoided because X's manager can be programmed such that
after starting the execution of P it can be ready to accept calls to R.
Note that DP, Ada and SR suffer from the nested calls problem."

An :class:`AdaTask` executes each accepted entry *inside the server task
itself* — while serving a call it cannot accept another.  Benchmark E8
builds two tasks with the paper's X.P → Y.Q → X.R call chain and shows
the rendezvous version deadlocking (detected by the kernel) where the
ALPS manager version completes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..channels.channel import Channel, Receive, ReceiveGuard, Send
from ..errors import CallError
from ..kernel.syscalls import Select

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class EntryRequest:
    """One pending rendezvous: arguments plus the reply channel."""

    __slots__ = ("entry", "args", "reply")

    def __init__(self, entry: str, args: tuple, reply: Channel) -> None:
        self.entry = entry
        self.args = args
        self.reply = reply


class AdaTask:
    """A server task with named entries and synchronous rendezvous.

    The server body (a generator function receiving the task) typically
    loops::

        def server(task):
            while True:
                req = yield task.accept("p", "q")
                ...compute...
                yield task.reply(req, result)

    Callers invoke ``result = yield from task.call("p", args...)``.
    """

    def __init__(
        self,
        kernel: "Kernel",
        entries: list[str],
        server: Callable[["AdaTask"], Any] | None = None,
        name: str = "task",
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.entries: dict[str, Channel] = {
            entry: Channel(name=f"{name}.{entry}") for entry in entries
        }
        self.server_process: "Process | None" = None
        if server is not None:
            self.server_process = kernel.spawn(
                server, self, name=f"{name}.server", daemon=True
            )

    # -- caller side -----------------------------------------------------

    def call(self, entry: str, *args: Any):
        """Synchronous entry call (generator; ``yield from``)."""
        channel = self.entries.get(entry)
        if channel is None:
            raise CallError(f"{self.name} has no entry {entry!r}")
        reply = Channel(name=f"{self.name}.{entry}.reply")
        yield Send(channel, EntryRequest(entry, args, reply))
        return (yield Receive(reply))

    # -- server side ------------------------------------------------------

    def accept(self, *entries: str, when: Callable[..., bool] | None = None) -> Select:
        """Selective accept over the named entries; returns the request."""
        guards = []
        for entry in entries:
            channel = self.entries.get(entry)
            if channel is None:
                raise CallError(f"{self.name} has no entry {entry!r}")
            guards.append(ReceiveGuard(channel, when=when))
        select = Select(*guards)
        select.unwrap = True
        return select

    def pending(self, entry: str) -> int:
        """The COUNT attribute: queued callers on an entry."""
        return len(self.entries[entry])

    def reply(self, request: EntryRequest, result: Any = None) -> Send:
        """Complete the rendezvous, releasing the caller."""
        return Send(request.reply, result)
