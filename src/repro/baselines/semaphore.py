"""Counting semaphores on the ALPS kernel.

The paper's §1 argument starts here: "Most object oriented systems
implement synchronization and scheduling for entry calls using semaphores
or conditional critical regions. ... This approach has the drawback that
the scheduling algorithm gets scattered across the various procedures of
the object."  The baseline buffer/readers-writers implementations in
:mod:`repro.baselines` exhibit exactly that scattering; benchmark E1/E10
compare them against the manager versions.

``P`` blocks until a unit is available (FIFO); ``V`` releases one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..errors import AlpsError
from ..kernel.syscalls import Select, Syscall
from ..kernel.waiting import Guard, Ready, Waitable

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process


class Semaphore(Waitable):
    """A counting semaphore with FIFO wakeup."""

    def __init__(self, value: int = 0, name: str = "sem") -> None:
        super().__init__()
        if value < 0:
            raise AlpsError(f"semaphore initial value must be >= 0, got {value}")
        self.value = value
        self.name = name
        #: Lifetime counters.
        self.total_p = 0
        self.total_v = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Semaphore {self.name}={self.value}>"


class PGuard(Guard):
    """Guard form of ``P``: ready when the semaphore is positive."""

    def __init__(self, sem: Semaphore, pri: object = None) -> None:
        self.sem = sem
        self.pri = pri

    def poll(self, kernel: "Kernel") -> Ready | None:
        return Ready(self.sem) if self.sem.value > 0 else None

    def commit(self, kernel: "Kernel", proc: "Process", ready: Ready) -> Semaphore:
        self.sem.value -= 1
        self.sem.total_p += 1
        return self.sem

    def waitables(self) -> Iterable[Waitable]:
        return (self.sem,)

    def describe(self) -> str:
        return f"P({self.sem.name})"


def P(sem: Semaphore) -> Select:
    """Blocking ``P`` (wait/down): ``yield P(sem)``."""
    select = Select(PGuard(sem))
    select.unwrap = True
    return select


class V(Syscall):
    """``V`` (signal/up): never blocks."""

    __slots__ = ("sem",)

    def __init__(self, sem: Semaphore) -> None:
        self.sem = sem

    def handle(self, kernel: "Kernel", proc: "Process", cost: int) -> None:
        self.sem.value += 1
        self.sem.total_v += 1
        kernel.schedule_resume(proc, None, cost=cost)
        kernel.notify(self.sem)


def p_all(*sems: Semaphore):
    """Acquire several semaphores in order (helper generator)."""
    for sem in sems:
        yield P(sem)


def v_all(*sems: Semaphore):
    """Release several semaphores in order (helper generator)."""
    for sem in sems:
        yield V(sem)
