"""Path expressions (Campbell & Habermann, 1974) on the ALPS kernel.

§1: "In ALPS it is possible to design objects such that all entry
procedures of the object are sequential procedures and all scheduling is
implemented separately ... [an idea] first used in path expressions."
The paper cites path expressions [4,5] as one of the abstractions the
manager generalizes, so we implement them as a baseline: a small parser
for the classical grammar and the standard translation into semaphore
prologues/epilogues wrapped around each operation.

Grammar::

    path       := 'path' sequence 'end'
    sequence   := selection ( ';' selection )*
    selection  := factor ( ',' factor )*
    factor     := NUMBER ':' '(' sequence ')'      restriction
                | '[' sequence ']'                 burst (simultaneous)
                | '(' sequence ')'
                | NAME

Semantics (the standard counter derivation):

* ``a ; b`` — the *n*-th execution of ``b`` may begin only after the
  *n*-th execution of ``a`` has finished (semaphore initialized to 0
  between the stages);
* ``a , b`` — alternatives: both governed by the same surrounding
  constraints;
* ``n : ( L )`` — at most ``n`` executions of ``L`` active at once
  (counting semaphore ``n`` around it);
* ``[ L ]`` — burst: any number of simultaneous executions count as one
  with respect to the surrounding constraints (first-in acquires, last-
  out releases — the readers-writers shape).

Examples::

    path 1:(deposit; remove) end          # one-slot buffer
    path N:(deposit; remove) end          # N-slot bounded buffer
    path 1:([read], write) end            # readers-writers

Use :func:`compile_path` to obtain a :class:`PathRuntime`, then wrap each
operation body with ``yield from rt.before("name")`` / ``yield from
rt.after("name")`` (or :meth:`PathRuntime.wrap`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from ..errors import PathExpressionError
from .semaphore import P, Semaphore, V


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


@dataclass
class Name:
    name: str


@dataclass
class Sequence:
    items: list


@dataclass
class Selection:
    items: list


@dataclass
class Restriction:
    limit: int
    body: object


@dataclass
class Burst:
    body: object


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<sym>[:;,()\[\]]))"
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise PathExpressionError(
                    f"unexpected character {text[pos]!r} at position {pos}"
                )
            break
        tokens.append(match.group(match.lastgroup))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise PathExpressionError(f"unexpected end of path expression")
        if expected is not None and token != expected:
            raise PathExpressionError(f"expected {expected!r}, got {token!r}")
        self.pos += 1
        return token

    def parse_path(self) -> object:
        if self.peek() == "path":
            self.take("path")
            body = self.parse_sequence()
            self.take("end")
        else:
            body = self.parse_sequence()
        if self.peek() is not None:
            raise PathExpressionError(f"trailing tokens: {self.tokens[self.pos:]}")
        return body

    def parse_sequence(self) -> object:
        items = [self.parse_selection()]
        while self.peek() == ";":
            self.take(";")
            items.append(self.parse_selection())
        return items[0] if len(items) == 1 else Sequence(items)

    def parse_selection(self) -> object:
        items = [self.parse_factor()]
        while self.peek() == ",":
            self.take(",")
            items.append(self.parse_factor())
        return items[0] if len(items) == 1 else Selection(items)

    def parse_factor(self) -> object:
        token = self.peek()
        if token is None:
            raise PathExpressionError("unexpected end of path expression")
        if token.isdigit():
            self.take()
            self.take(":")
            self.take("(")
            body = self.parse_sequence()
            self.take(")")
            limit = int(token)
            if limit < 1:
                raise PathExpressionError(f"restriction must be >= 1, got {limit}")
            return Restriction(limit, body)
        if token == "[":
            self.take("[")
            body = self.parse_sequence()
            self.take("]")
            return Burst(body)
        if token == "(":
            self.take("(")
            body = self.parse_sequence()
            self.take(")")
            return body
        if token in (";", ",", ")", "]", ":", "end"):
            raise PathExpressionError(f"unexpected {token!r}")
        self.take()
        return Name(token)


def parse_path(text: str) -> object:
    """Parse a path expression into its AST."""
    return _Parser(_tokenize(text)).parse_path()


# ----------------------------------------------------------------------
# Translation to semaphore prologues/epilogues
# ----------------------------------------------------------------------


@dataclass
class _Ops:
    """Prologue/epilogue actions attached to one operation name."""

    before: list = field(default_factory=list)
    after: list = field(default_factory=list)


class PathRuntime:
    """Executable form of a path expression.

    ``before(name)``/``after(name)`` are generators performing the
    semaphore operations derived from the expression.  ``wrap(name, gen)``
    brackets a body with both.  Executions are counted per operation.
    """

    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.ops: dict[str, _Ops] = {}
        self.semaphores: list[Semaphore] = []
        self.counts: dict[str, int] = {}
        self._burst_counter = 0
        ast = parse_path(expression)
        self._compile(ast, pre=[], post=[])
        if not self.ops:
            raise PathExpressionError(f"path {expression!r} names no operations")

    # -- compilation -------------------------------------------------------

    def _sem(self, value: int, name: str) -> Semaphore:
        sem = Semaphore(value, name=f"path.{name}{len(self.semaphores)}")
        self.semaphores.append(sem)
        return sem

    def _compile(self, node: object, pre: list, post: list) -> None:
        if isinstance(node, Name):
            if node.name in self.ops:
                raise PathExpressionError(
                    f"operation {node.name!r} appears more than once in "
                    f"{self.expression!r}"
                )
            self.ops[node.name] = _Ops(before=list(pre), after=list(post))
            self.counts[node.name] = 0
        elif isinstance(node, Selection):
            for child in node.items:
                self._compile(child, pre, post)
        elif isinstance(node, Sequence):
            # sems between consecutive stages, init 0: stage i+1's n-th
            # start needs stage i's n-th finish.
            stages = node.items
            links = [self._sem(0, "seq") for _ in range(len(stages) - 1)]
            for index, child in enumerate(stages):
                child_pre = list(pre) if index == 0 else [("P", links[index - 1])]
                child_post = list(post) if index == len(stages) - 1 else [("V", links[index])]
                self._compile(child, child_pre, child_post)
        elif isinstance(node, Restriction):
            gate = self._sem(node.limit, "limit")
            self._compile(
                node.body,
                pre=list(pre) + [("P", gate)],
                post=[("V", gate)] + list(post),
            )
        elif isinstance(node, Burst):
            # First-in performs the surrounding prologue, last-out the
            # surrounding epilogue; a mutex protects the counter.
            self._burst_counter += 1
            mutex = self._sem(1, "burstmx")
            token = f"__burst{self._burst_counter}"
            self.counts[token] = 0
            burst_pre = [("BURST_IN", (mutex, token, list(pre)))]
            burst_post = [("BURST_OUT", (mutex, token, list(post)))]
            self._compile(node.body, burst_pre, burst_post)
        else:  # pragma: no cover - parser produces only the above
            raise PathExpressionError(f"unknown node {node!r}")

    # -- execution ---------------------------------------------------------

    def _run_ops(self, actions: list):
        for kind, payload in actions:
            if kind == "P":
                yield P(payload)
            elif kind == "V":
                yield V(payload)
            elif kind == "BURST_IN":
                mutex, token, inner = payload
                yield P(mutex)
                self.counts[token] += 1
                if self.counts[token] == 1:
                    yield from self._run_ops(inner)
                yield V(mutex)
            elif kind == "BURST_OUT":
                mutex, token, inner = payload
                yield P(mutex)
                self.counts[token] -= 1
                if self.counts[token] == 0:
                    yield from self._run_ops(inner)
                yield V(mutex)

    def _lookup(self, name: str) -> _Ops:
        ops = self.ops.get(name)
        if ops is None:
            raise PathExpressionError(
                f"operation {name!r} is not named in {self.expression!r}"
            )
        return ops

    def before(self, name: str):
        """Prologue for operation ``name`` (generator; ``yield from``)."""
        yield from self._run_ops(self._lookup(name).before)

    def after(self, name: str):
        """Epilogue for operation ``name``."""
        yield from self._run_ops(self._lookup(name).after)
        self.counts[name] += 1

    def wrap(self, name: str, body_gen):
        """Bracket ``body_gen`` with the operation's prologue/epilogue."""
        yield from self.before(name)
        result = yield from body_gen
        yield from self.after(name)
        return result

    def guard_fn(self, name: str, body: Callable[..., object]):
        """Build a wrapped generator function for ``body``."""

        def wrapped(*args, **kwargs):
            gen = body(*args, **kwargs)
            if not (hasattr(gen, "send") and hasattr(gen, "throw")):
                plain = gen

                def once():
                    return plain
                    yield  # pragma: no cover

                gen = once()
            return (yield from self.wrap(name, gen))

        wrapped.__name__ = f"path_{name}"
        return wrapped

    @property
    def operations(self) -> list[str]:
        return [n for n in self.ops]


def compile_path(expression: str) -> PathRuntime:
    """Compile a path expression into a :class:`PathRuntime`."""
    return PathRuntime(expression)
