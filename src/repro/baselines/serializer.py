"""Serializers (Atkinson & Hewitt, 1979) on the ALPS kernel.

§1: "An ALPS object is a resource protected by the manager.  The manager
can be programmed to allow multiple users to access the resource
simultaneously - a facility sought in the design of the serializer
mechanism."  A serializer extends a monitor with *queues* guarded by
conditions and *crowds*: possession of the serializer is released while a
process waits in a queue or runs inside a crowd, and events (enter, queue
head eligible, crowd exit) re-evaluate the queues in priority order.

API (bodies are generators)::

    s = Serializer(kernel, "db")
    readers, writers = s.crowd("readers"), s.crowd("writers")
    read_q, write_q = s.queue("read_q"), s.queue("write_q")

    def read(key):
        yield from s.enter()
        yield from s.enqueue(read_q, lambda: writers.empty)
        result = yield from s.join_crowd(readers, body())
        yield from s.leave()
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from .semaphore import P, Semaphore, V

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


class Crowd:
    """A set of processes concurrently using the resource."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.peak = 0

    @property
    def empty(self) -> bool:
        return self.count == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Crowd {self.name} count={self.count}>"


class SerializerQueue:
    """A FIFO queue of processes waiting for a guard to open."""

    def __init__(self, name: str, priority: int = 0) -> None:
        self.name = name
        #: Smaller priority = evaluated earlier on each event.
        self.priority = priority
        self._entries: deque[tuple[Semaphore, Callable[[], bool]]] = deque()
        self.total_enqueues = 0

    @property
    def waiting(self) -> int:
        return len(self._entries)

    def head_ready(self) -> bool:
        if not self._entries:
            return False
        _ticket, guard = self._entries[0]
        return bool(guard())


class Serializer:
    """The serializer: exclusive core, queues, and crowds."""

    def __init__(self, kernel: "Kernel", name: str = "serializer") -> None:
        self.kernel = kernel
        self.name = name
        self._lock = Semaphore(1, name=f"{name}.lock")
        self._queues: list[SerializerQueue] = []
        self._crowds: dict[str, Crowd] = {}

    def queue(self, name: str, priority: int = 0) -> SerializerQueue:
        q = SerializerQueue(name, priority)
        self._queues.append(q)
        self._queues.sort(key=lambda x: x.priority)
        return q

    def crowd(self, name: str) -> Crowd:
        if name not in self._crowds:
            self._crowds[name] = Crowd(name)
        return self._crowds[name]

    # -- possession ----------------------------------------------------

    def enter(self):
        """Gain possession of the serializer."""
        yield P(self._lock)

    def leave(self):
        """Release possession, or hand it to an eligible queue head.

        If some queue's head guard is open, possession transfers directly
        to that waiter (the lock is never released in between), which
        preserves FIFO-within-queue and priority-across-queues semantics;
        otherwise the lock is freed.
        """
        for q in self._queues:
            if q.head_ready():
                ticket, _guard = q._entries.popleft()
                yield V(ticket)  # hand possession to the waiter
                return
        yield V(self._lock)

    # -- queues ----------------------------------------------------------

    def enqueue(self, q: SerializerQueue, guard: Callable[[], bool]):
        """Wait in ``q`` until at the head with ``guard()`` true.

        Possession is released while waiting (the defining difference
        from a monitor's condition wait: guards are re-evaluated by the
        serializer on every event, the waiter does not poll).
        """
        q.total_enqueues += 1
        if not q._entries and guard():
            return  # guard open and queue empty: pass straight through
        ticket = Semaphore(0, name=f"{q.name}.ticket")
        q._entries.append((ticket, guard))
        yield from self.leave()
        yield P(ticket)
        # Possession was handed to us by _service_queues.

    # -- crowds ----------------------------------------------------------

    def join_crowd(self, crowd: Crowd, body_gen):
        """Run ``body_gen`` inside ``crowd``, without possession.

        join → release → body runs concurrently with others → re-enter →
        leave crowd.  Returns the body's result.
        """
        crowd.count += 1
        crowd.peak = max(crowd.peak, crowd.count)
        yield from self.leave()
        try:
            result = yield from body_gen
        finally:
            yield from self.enter()
            crowd.count -= 1
        return result
