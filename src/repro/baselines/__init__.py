"""Baseline synchronization abstractions the ALPS manager generalizes (§1).

Semaphores, Mesa monitors, serializers, path expressions and Ada-style
rendezvous — all built on the same kernel so that the comparisons in
benchmarks E1/E2/E8/E10 measure mechanism differences, not substrate
differences.
"""

from .monitor import Condition, Monitor
from .objects import (
    MonitorBuffer,
    MonitorReadersWriters,
    PathBuffer,
    PathReadersWriters,
    SemaphoreBuffer,
    SerializerReadersWriters,
)
from .path_expressions import PathRuntime, compile_path, parse_path
from .rendezvous import AdaTask, EntryRequest
from .semaphore import P, PGuard, Semaphore, V, p_all, v_all
from .serializer import Crowd, Serializer, SerializerQueue

__all__ = [
    "Semaphore",
    "P",
    "V",
    "PGuard",
    "p_all",
    "v_all",
    "Monitor",
    "Condition",
    "Serializer",
    "SerializerQueue",
    "Crowd",
    "PathRuntime",
    "compile_path",
    "parse_path",
    "AdaTask",
    "EntryRequest",
    "SemaphoreBuffer",
    "MonitorBuffer",
    "PathBuffer",
    "MonitorReadersWriters",
    "SerializerReadersWriters",
    "PathReadersWriters",
]
