"""Baseline implementations of the paper's example resources.

These are the "before" pictures for §1's critique: the same bounded
buffer and readers–writers database, programmed with semaphores,
monitors, serializers and path expressions on the identical kernel.  The
scheduling logic is *scattered across the procedures* (each body delays
itself), which is exactly the structure the manager centralizes.

Benchmarks E1/E2/E10 run these head-to-head against the
:mod:`repro.stdlib` manager versions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..kernel.syscalls import Charge
from .monitor import Monitor
from .path_expressions import compile_path
from .semaphore import P, Semaphore, V
from .serializer import Serializer

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


class SemaphoreBuffer:
    """Bounded buffer via the classic three-semaphore recipe."""

    def __init__(self, kernel: "Kernel", size: int = 8, work: int = 0) -> None:
        self.size = size
        self.work = work
        self.buf: list[Any] = [None] * size
        self.inptr = 0
        self.outptr = 0
        self.empty = Semaphore(size, name="empty")
        self.full = Semaphore(0, name="full")
        self.mutex = Semaphore(1, name="mutex")

    def deposit(self, message):
        # Synchronization is inline in the procedure — the §1 scattering.
        yield P(self.empty)
        yield P(self.mutex)
        if self.work:
            yield Charge(self.work, label="deposit")
        self.buf[self.inptr] = message
        self.inptr = (self.inptr + 1) % self.size
        yield V(self.mutex)
        yield V(self.full)

    def remove(self):
        yield P(self.full)
        yield P(self.mutex)
        if self.work:
            yield Charge(self.work, label="remove")
        message = self.buf[self.outptr]
        self.outptr = (self.outptr + 1) % self.size
        yield V(self.mutex)
        yield V(self.empty)
        return message


class MonitorBuffer:
    """Bounded buffer as a Hoare/Mesa monitor with two conditions."""

    def __init__(self, kernel: "Kernel", size: int = 8, work: int = 0) -> None:
        self.size = size
        self.work = work
        self.buf: list[Any] = [None] * size
        self.inptr = 0
        self.outptr = 0
        self.count = 0
        self.monitor = Monitor(kernel, "buffer")
        self.not_full = self.monitor.condition("not_full")
        self.not_empty = self.monitor.condition("not_empty")

    def deposit(self, message):
        yield from self.monitor.acquire()
        while self.count == self.size:  # Mesa: re-test after wake
            yield from self.not_full.wait()
        if self.work:
            yield Charge(self.work, label="deposit")
        self.buf[self.inptr] = message
        self.inptr = (self.inptr + 1) % self.size
        self.count += 1
        yield from self.not_empty.signal()
        yield from self.monitor.release()

    def remove(self):
        yield from self.monitor.acquire()
        while self.count == 0:
            yield from self.not_empty.wait()
        if self.work:
            yield Charge(self.work, label="remove")
        message = self.buf[self.outptr]
        self.outptr = (self.outptr + 1) % self.size
        self.count -= 1
        yield from self.not_full.signal()
        yield from self.monitor.release()
        return message


class PathBuffer:
    """Bounded buffer governed by ``path N:(deposit; remove) end``.

    With the path expression carrying *all* synchronization, the bodies
    are plain sequential procedures — the property the paper credits path
    expressions with pioneering (§1).  One-slot semantics per sequence
    instance: parallel deposits are allowed up to N ahead of removes.
    """

    def __init__(self, kernel: "Kernel", size: int = 8, work: int = 0) -> None:
        self.size = size
        self.work = work
        self.items: list[Any] = []
        self.taken: list[Any] = []
        self.paths = compile_path(f"path {size}:(deposit; remove) end")
        self.mutex = Semaphore(1, name="pathbuf.mutex")

    def deposit(self, message):
        yield from self.paths.before("deposit")
        if self.work:
            yield Charge(self.work, label="deposit")
        yield P(self.mutex)
        self.items.append(message)
        yield V(self.mutex)
        yield from self.paths.after("deposit")

    def remove(self):
        yield from self.paths.before("remove")
        if self.work:
            yield Charge(self.work, label="remove")
        yield P(self.mutex)
        message = self.items.pop(0)
        self.taken.append(message)
        yield V(self.mutex)
        yield from self.paths.after("remove")
        return message


class MonitorReadersWriters:
    """Readers–writers with a monitor (writer-priority-free variant)."""

    def __init__(self, kernel: "Kernel", read_max: int = 4, read_work: int = 10, write_work: int = 20) -> None:
        self.read_max = read_max
        self.read_work = read_work
        self.write_work = write_work
        self.data: dict[Any, Any] = {}
        self.monitor = Monitor(kernel, "rw")
        self.ok_to_read = self.monitor.condition("ok_to_read")
        self.ok_to_write = self.monitor.condition("ok_to_write")
        self.readers = 0
        self.writing = False
        self.max_concurrent_readers = 0
        self.exclusion_violations = 0

    def read(self, key):
        yield from self.monitor.acquire()
        while self.writing or self.readers >= self.read_max:
            yield from self.ok_to_read.wait()
        self.readers += 1
        self.max_concurrent_readers = max(self.max_concurrent_readers, self.readers)
        yield from self.monitor.release()

        if self.writing:
            self.exclusion_violations += 1
        if self.read_work:
            yield Charge(self.read_work, label="read")
        value = self.data.get(key)

        yield from self.monitor.acquire()
        self.readers -= 1
        if self.readers == 0:
            yield from self.ok_to_write.signal()
        yield from self.ok_to_read.signal()
        yield from self.monitor.release()
        return value

    def write(self, key, value):
        yield from self.monitor.acquire()
        while self.writing or self.readers > 0:
            yield from self.ok_to_write.wait()
        self.writing = True
        yield from self.monitor.release()

        if self.readers:
            self.exclusion_violations += 1
        if self.write_work:
            yield Charge(self.write_work, label="write")
        self.data[key] = value

        yield from self.monitor.acquire()
        self.writing = False
        yield from self.ok_to_write.signal()
        yield from self.ok_to_read.broadcast()
        yield from self.monitor.release()


class SerializerReadersWriters:
    """Readers–writers with a serializer (the §1 'facility sought')."""

    def __init__(self, kernel: "Kernel", read_work: int = 10, write_work: int = 20) -> None:
        self.read_work = read_work
        self.write_work = write_work
        self.data: dict[Any, Any] = {}
        self.s = Serializer(kernel, "rw")
        self.readers = self.s.crowd("readers")
        self.writers = self.s.crowd("writers")
        self.read_q = self.s.queue("read_q", priority=0)
        self.write_q = self.s.queue("write_q", priority=1)

    def read(self, key):
        yield from self.s.enter()
        yield from self.s.enqueue(self.read_q, lambda: self.writers.empty)

        def body():
            if self.read_work:
                yield Charge(self.read_work, label="read")
            return self.data.get(key)

        value = yield from self.s.join_crowd(self.readers, body())
        yield from self.s.leave()
        return value

    def write(self, key, value):
        yield from self.s.enter()
        yield from self.s.enqueue(
            self.write_q, lambda: self.writers.empty and self.readers.empty
        )

        def body():
            if self.write_work:
                yield Charge(self.write_work, label="write")
            self.data[key] = value

        yield from self.s.join_crowd(self.writers, body())
        yield from self.s.leave()


class PathReadersWriters:
    """Readers–writers via ``path 1:([read], write) end``."""

    def __init__(self, kernel: "Kernel", read_work: int = 10, write_work: int = 20) -> None:
        self.read_work = read_work
        self.write_work = write_work
        self.data: dict[Any, Any] = {}
        self.paths = compile_path("path 1:([read], write) end")
        self.active_readers = 0
        self.active_writers = 0
        self.exclusion_violations = 0

    def read(self, key):
        yield from self.paths.before("read")
        self.active_readers += 1
        if self.active_writers:
            self.exclusion_violations += 1
        if self.read_work:
            yield Charge(self.read_work, label="read")
        value = self.data.get(key)
        self.active_readers -= 1
        yield from self.paths.after("read")
        return value

    def write(self, key, value):
        yield from self.paths.before("write")
        self.active_writers += 1
        if self.active_writers > 1 or self.active_readers:
            self.exclusion_violations += 1
        if self.write_work:
            yield Charge(self.write_work, label="write")
        self.data[key] = value
        self.active_writers -= 1
        yield from self.paths.after("write")
