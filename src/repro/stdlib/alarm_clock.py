"""An alarm clock — timed scheduling inside a manager.

The classic monitor example (Hoare 1974) recast in ALPS style: callers
invoke ``sleep_until(deadline)`` / ``sleep_for(ticks)`` and are held by
the manager — no body ever runs — until virtual time passes their
deadline.  Shows a manager combining acceptance conditions on
*parameters* (the requested deadline) with a :class:`~repro.kernel.Timeout`
guard, a guard form the paper's model admits naturally even though its
examples never need one.
"""

from __future__ import annotations

from ..core import AcceptGuard, AlpsObject, Finish, entry, icpt, manager_process
from ..kernel.syscalls import Select
from ..kernel.timeouts import Timeout


class AlarmClock(AlpsObject):
    """``object AlarmClock`` — manager-held timed waits.

    Configuration: ``wait_max`` (hidden array size = simultaneous
    sleepers).  ``sleep_until`` returns the wake-up time.
    """

    def setup(self, wait_max: int = 16) -> None:
        self.wait_max = wait_max
        #: (deadline, call) pairs the manager is holding.
        self._holding: list = []

    @entry(returns=1, array="wait_max")
    def sleep_until(self, deadline):
        raise AssertionError("alarm bodies are never executed")

    @entry(returns=1, array="wait_max")
    def sleep_for(self, ticks):
        raise AssertionError("alarm bodies are never executed")

    @manager_process(
        intercepts={"sleep_until": icpt(params=1), "sleep_for": icpt(params=1)}
    )
    def mgr(self):
        holding = self._holding
        while True:
            now = self.kernel.clock.now
            # Release everyone whose deadline has passed.
            due = [pair for pair in holding if pair[0] <= now]
            for pair in due:
                holding.remove(pair)
                yield Finish(pair[1], now)
            guards = [
                AcceptGuard(self, "sleep_until"),
                AcceptGuard(self, "sleep_for"),
            ]
            if holding:
                next_deadline = min(deadline for deadline, _call in holding)
                guards.append(Timeout(max(0, next_deadline - now)))
            result = yield Select(*guards)
            if result.index < 2 and result.guard is not None:
                call = result.value
                if call.entry == "sleep_until":
                    deadline = call.args[0]
                else:
                    deadline = self.kernel.clock.now + call.args[0]
                holding.append((deadline, call))

    @property
    def sleeping(self) -> int:
        """Number of callers currently held by the manager."""
        return len(self._holding)
