"""A writable key→value store: the canonical replication target.

The paper's :class:`~repro.stdlib.Dictionary` is read-only (plus
combining); replication needs an object whose entries *mutate* shared
data so write forwarding and convergence are observable.  ``KVStore``
keeps a plain mapping and exposes idempotent write entries (``put`` and
``delete`` are last-writer-wins), which is exactly the contract
at-least-once replication wants: re-applying a forwarded or re-queued
write leaves the same state.

No manager: every entry runs unmanaged (a server process per call), so
the store is maximally concurrent and all ordering comes from the
replication layer's version sequencing.  The ``ping`` entry lets a
:class:`~repro.faults.Heartbeat` watch the store directly, without a
co-located :class:`~repro.faults.Beacon`.
"""

from __future__ import annotations

from ..core import (
    ACCEPT_PRI,
    AWAIT_PRI,
    SHED_PRI,
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    DeadlineSweepGuard,
    Finish,
    PredictedWaitGuard,
    Reject,
    ShedGuard,
    Start,
    entry,
    manager_process,
)
from ..kernel.syscalls import Charge, Select


class KVStore(AlpsObject):
    """``object KVStore`` — a mutable mapping with chargeable work.

    Configuration: ``data`` (initial mapping), ``read_work`` /
    ``write_work`` (ticks one get / one put-or-delete takes).
    """

    def setup(
        self,
        data: dict | None = None,
        read_work: int = 0,
        write_work: int = 0,
    ) -> None:
        self.data = dict(data or {})
        self.read_work = read_work
        self.write_work = write_work
        #: Operation counters (tests/benches).
        self.reads_served = 0
        self.writes_applied = 0

    @entry(returns=1)
    def get(self, key):
        """Return the value stored under ``key`` (None when absent)."""
        if self.read_work:
            yield Charge(self.read_work, label="get")
        self.reads_served += 1
        return self.data.get(key)

    @entry(returns=1)
    def put(self, key, value):
        """Store ``value`` under ``key``; returns the value (idempotent)."""
        if self.write_work:
            yield Charge(self.write_work, label="put")
        self.data[key] = value
        self.writes_applied += 1
        return value

    @entry(returns=1)
    def delete(self, key):
        """Remove ``key``; returns the removed value (idempotent)."""
        if self.write_work:
            yield Charge(self.write_work, label="delete")
        self.writes_applied += 1
        return self.data.pop(key, None)

    @entry(returns=1)
    def size(self):
        return len(self.data)

    @entry(returns=1)
    def ping(self):
        return "ok"


class GatedKVStore(AlpsObject):
    """``object GatedKVStore`` — a KV store behind an admitting manager.

    The unmanaged :class:`KVStore` stays maximally concurrent for the
    replication layer; this variant fronts the same three operations with
    a manager that applies admission control, for open-loop traffic that
    can outrun the store.  Bodies still run concurrently (the manager
    ``Start``\\ s them and reclaims slots via ``await``), so the manager
    adds gating, not serialization.

    Configuration: ``data`` (initial mapping), ``read_work`` /
    ``write_work`` (ticks per operation), ``request_max`` (hidden array
    size per entry), ``queue_cap`` (admission control: shed an entry's
    calls once more than ``queue_cap`` are pending, §2.5.1 ``#P``).
    """

    OPS = ("get", "put", "delete")

    def setup(
        self,
        data: dict | None = None,
        read_work: int = 0,
        write_work: int = 0,
        request_max: int = 16,
        queue_cap: int | None = None,
    ) -> None:
        self.data = dict(data or {})
        self.read_work = read_work
        self.write_work = write_work
        self.request_max = request_max
        self.queue_cap = queue_cap
        self.reads_served = 0
        self.writes_applied = 0

    @entry(returns=1, array="request_max")
    def get(self, key):
        if self.read_work:
            yield Charge(self.read_work, label="get")
        self.reads_served += 1
        return self.data.get(key)

    @entry(returns=1, array="request_max")
    def put(self, key, value):
        if self.write_work:
            yield Charge(self.write_work, label="put")
        self.data[key] = value
        self.writes_applied += 1
        return value

    @entry(returns=1, array="request_max")
    def delete(self, key):
        if self.write_work:
            yield Charge(self.write_work, label="delete")
        self.writes_applied += 1
        return self.data.pop(key, None)

    @manager_process(intercepts=["get", "put", "delete"])
    def mgr(self):
        cap = self.queue_cap
        while True:
            if cap is None:
                guards = [AwaitGuard(self, op) for op in self.OPS]
                guards += [AcceptGuard(self, op) for op in self.OPS]
            else:
                guards = [AwaitGuard(self, op, pri=AWAIT_PRI) for op in self.OPS]
                # Latency-aware arms: sweep dead queued calls, then shed
                # deadlined calls that cannot be served in time, then the
                # plain queue cap — all before admitting new work.
                guards += [DeadlineSweepGuard(self, op) for op in self.OPS]
                guards += [PredictedWaitGuard(self, op) for op in self.OPS]
                guards += [
                    ShedGuard(self, op, cap=cap, pri=SHED_PRI) for op in self.OPS
                ]
                guards += [AcceptGuard(self, op, pri=ACCEPT_PRI) for op in self.OPS]
            result = yield Select(*guards)
            call = result.value
            if isinstance(result.guard, ShedGuard):
                yield Reject(call, reason=result.guard.reason)
            elif isinstance(result.guard, AcceptGuard):
                # Async start: bodies overlap, the manager only gates.
                yield Start(call)
            else:
                yield Finish(call)
