"""A writable key→value store: the canonical replication target.

The paper's :class:`~repro.stdlib.Dictionary` is read-only (plus
combining); replication needs an object whose entries *mutate* shared
data so write forwarding and convergence are observable.  ``KVStore``
keeps a plain mapping and exposes idempotent write entries (``put`` and
``delete`` are last-writer-wins), which is exactly the contract
at-least-once replication wants: re-applying a forwarded or re-queued
write leaves the same state.

No manager: every entry runs unmanaged (a server process per call), so
the store is maximally concurrent and all ordering comes from the
replication layer's version sequencing.  The ``ping`` entry lets a
:class:`~repro.faults.Heartbeat` watch the store directly, without a
co-located :class:`~repro.faults.Beacon`.
"""

from __future__ import annotations

from ..core import AlpsObject, entry
from ..kernel.syscalls import Charge


class KVStore(AlpsObject):
    """``object KVStore`` — a mutable mapping with chargeable work.

    Configuration: ``data`` (initial mapping), ``read_work`` /
    ``write_work`` (ticks one get / one put-or-delete takes).
    """

    def setup(
        self,
        data: dict | None = None,
        read_work: int = 0,
        write_work: int = 0,
    ) -> None:
        self.data = dict(data or {})
        self.read_work = read_work
        self.write_work = write_work
        #: Operation counters (tests/benches).
        self.reads_served = 0
        self.writes_applied = 0

    @entry(returns=1)
    def get(self, key):
        """Return the value stored under ``key`` (None when absent)."""
        if self.read_work:
            yield Charge(self.read_work, label="get")
        self.reads_served += 1
        return self.data.get(key)

    @entry(returns=1)
    def put(self, key, value):
        """Store ``value`` under ``key``; returns the value (idempotent)."""
        if self.write_work:
            yield Charge(self.write_work, label="put")
        self.data[key] = value
        self.writes_applied += 1
        return value

    @entry(returns=1)
    def delete(self, key):
        """Remove ``key``; returns the removed value (idempotent)."""
        if self.write_work:
            yield Charge(self.write_work, label="delete")
        self.writes_applied += 1
        return self.data.pop(key, None)

    @entry(returns=1)
    def size(self):
        return len(self.data)

    @entry(returns=1)
    def ping(self):
        return "ok"
