"""The dictionary database with request combining of §2.7.1.

"Each time a request arrives asking for the meaning of a word, a new
process is created which then searches the dictionary for that particular
word and returns its meaning. ... Since it is wasteful to execute multiple
Search processes that search for the meaning of the same word, the
object's manager can be programmed to recognize such requests and to
combine them."

``search`` is a hidden procedure array ``Search[1..SearchMax]`` and the
manager intercepts both the parameter (the word) and the result (the
meaning) — the paper's ``intercepts Search(String; String)``.  The first
request for a word is started; later requests for the same in-flight word
are *combined*: when the leader's result is awaited, every follower is
finished with the same meaning and no body ever runs for it.
"""

from __future__ import annotations

from ..core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Combiner,
    Finish,
    Start,
    entry,
    icpt,
    manager_process,
)
from ..kernel.syscalls import Charge, Select


class Dictionary(AlpsObject):
    """``object Dictionary`` — combining duplicate searches.

    Configuration: ``entries`` (the word → meaning mapping), ``search_max``
    (array size = max simultaneous searches), ``search_work`` (ticks one
    search takes) and ``combining`` (False disables combining so benchmark
    E3 can measure its benefit).
    """

    def setup(
        self,
        entries: dict | None = None,
        search_max: int = 8,
        search_work: int = 50,
        combining: bool = True,
    ) -> None:
        self.entries = dict(entries or {})
        self.search_max = search_max
        self.search_work = search_work
        self.combining = combining
        #: Number of body executions actually performed (tests/benches).
        self.searches_executed = 0

    @entry(returns=1, array="search_max")
    def search(self, word):
        """Search the dictionary for Word and return its meaning."""
        self.searches_executed += 1
        if self.search_work:
            yield Charge(self.search_work, label="search")
        return self.entries.get(word, f"<{word}: not found>")

    @manager_process(intercepts={"search": icpt(params=1, results=1)})
    def mgr(self):
        combiner: Combiner[str] = Combiner()
        while True:
            result = yield Select(
                AcceptGuard(self, "search"),
                AwaitGuard(self, "search"),
            )
            call = result.value
            if isinstance(result.guard, AcceptGuard):
                (word,) = call.intercepted_args
                if self.combining and not combiner.join(word, call):
                    # "record that Word is now being searched on behalf of
                    # Search[i]" — the follower waits for the leader.
                    continue
                if not self.combining:
                    combiner.join((word, call.call_id), call)
                yield Start(call)
            else:
                (meaning,) = call.intercepted_results
                word = call.args[0]
                yield Finish(call, meaning)
                key = word if self.combining else (word, call.call_id)
                for follower in combiner.settle(key):
                    # finish without start: combining (§2.7).
                    yield Finish(follower, meaning)
