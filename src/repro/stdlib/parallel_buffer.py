"""The parallel bounded buffer of §2.8.2.

"Several producers and consumers are allowed to call the Deposit and
Remove procedures of a shared buffer that can hold a finite number of
potentially long messages. ... When the manager accepts a call to
Deposit[i], it allocates a free buffer slot and supplies its index as a
hidden parameter to Deposit[i]. ... Once the manager starts a Deposit[i]
or Remove[i] in this manner, it can access the buffer without further
synchronization."

The point (versus §2.4.1's serial buffer) is that *copying long messages*
happens outside the manager's critical path: many deposits and removes
proceed in parallel on disjoint slots.  The manager keeps two index lists,
``Free`` and ``Full``, and never remembers which slot it handed to which
procedure — each body returns its slot index as a hidden result.

Faithful to the paper's code, a deposited slot index enters ``Full`` only
when the deposit *finishes* (await → finish), and a removed slot re-enters
``Free`` only when the remove finishes.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..core import AcceptGuard, AlpsObject, AwaitGuard, Finish, Start, entry, manager_process
from ..kernel.syscalls import Charge, Select


class ParallelBuffer(AlpsObject):
    """``object Buffer`` (§2.8.2) — parallel deposits and removes.

    Configuration: ``size`` (N buffer slots), ``producer_max`` and
    ``consumer_max`` (hidden array sizes), ``copy_work`` (ticks to copy a
    message — the "potentially long messages"; may also be a callable
    message → ticks).
    """

    def setup(
        self,
        size: int = 8,
        producer_max: int = 4,
        consumer_max: int = 4,
        copy_work: Any = 20,
    ) -> None:
        if size < 1:
            raise ValueError(f"buffer size must be >= 1, got {size}")
        self.size = size
        self.producer_max = producer_max
        self.consumer_max = consumer_max
        self.copy_work = copy_work
        self.buf: list[Any] = [None] * size

    def _work_for(self, message: Any) -> int:
        if callable(self.copy_work):
            return int(self.copy_work(message))
        return int(self.copy_work)

    @entry(array="producer_max", hidden_params=1, hidden_results=1)
    def deposit(self, message, place):
        """``Buf[Place] := M`` — copy into the hidden-parameter slot."""
        work = self._work_for(message)
        if work:
            yield Charge(work, label="deposit-copy")
        self.buf[place] = message
        return place  # hidden result: the slot index, back to the manager

    @entry(returns=1, array="consumer_max", hidden_params=1, hidden_results=1)
    def remove(self, place):
        """``M := Buf[Place]`` — copy out of the hidden-parameter slot."""
        message = self.buf[place]
        work = self._work_for(message)
        if work:
            yield Charge(work, label="remove-copy")
        return (message, place)

    @manager_process(intercepts=["deposit", "remove"])
    def mgr(self):
        # Free: slot indices holding no message; Full: indices holding one.
        free: deque[int] = deque(range(self.size))
        full: deque[int] = deque()
        while True:
            result = yield Select(
                # accept Deposit[i] when a free slot exists
                AcceptGuard(self, "deposit", when=lambda: bool(free)),
                # accept Remove[i] when a full slot exists
                AcceptGuard(self, "remove", when=lambda: bool(full)),
                # await/finish either; hidden results carry the slot back
                AwaitGuard(self, "deposit"),
                AwaitGuard(self, "remove"),
            )
            call = result.value
            if isinstance(result.guard, AcceptGuard):
                if call.entry == "deposit":
                    yield Start(call, free.popleft())
                else:
                    yield Start(call, full.popleft())
            else:
                (place,) = call.hidden_results
                yield Finish(call)
                if call.entry == "deposit":
                    full.append(place)
                else:
                    free.append(place)
