"""Supervisor: an ALPS object that recovers other ALPS objects.

The recovery half of ``repro.faults``: a Supervisor ``watch``es placed
objects; when a node crash takes one down, the fault runtime *captures*
the calls the crash interrupted instead of failing them.  The
Supervisor's manager sleeps on the runtime's fault-event stream, and
once the victim's node is back up it restarts the object's manager and
re-queues every interrupted call — callers that were blocked mid-call
simply receive their results late, never a ``RemoteCallError``.

Restart preserves the object's shared data (ordinary instance
attributes), modelling state kept in stable storage; re-execution gives
at-least-once semantics, so watched entries should be idempotent.

The Supervisor is itself an ALPS object: place it on a node that does
not crash (or accept that supervision dies with it — there is no
meta-supervisor).
"""

from __future__ import annotations

from typing import Any

from ..core import AlpsObject, entry, manager_process
from ..errors import ObjectModelError
from ..faults.runtime import FaultRuntime
from ..kernel.syscalls import Delay


class Supervisor(AlpsObject):
    """Restart crashed watched objects and re-queue their interrupted calls.

    Parameters (via ``setup``)
    --------------------------
    faults:
        The installed :class:`~repro.faults.FaultRuntime`.
    reaction_delay:
        Extra ticks between noticing a fault transition and acting on it
        (models recovery latency; 0 reacts at the restart instant).
    """

    def setup(self, faults: FaultRuntime | None = None, reaction_delay: int = 0) -> None:
        if faults is None:
            raise TypeError("Supervisor requires faults=<installed FaultRuntime>")
        self.faults = faults
        self.reaction_delay = reaction_delay
        self.watched: dict[str, Any] = {}
        #: (tick, object name, calls re-queued) per recovery action.
        self.restarts: list[tuple[int, str, int]] = []

    def watch(self, obj: Any) -> Any:
        """Supervise ``obj``: its interrupted calls survive crashes.

        ``obj`` must already be placed on a node (an unplaced object
        lives outside the failure model, so there is nothing to recover)
        and must not already be watched — both cases raise
        :class:`~repro.errors.ObjectModelError` instead of silently
        overwriting the watch table.
        """
        if getattr(obj, "node", None) is None:
            raise ObjectModelError(
                f"{self.alps_name}: cannot watch {obj.alps_name!r} — place "
                "it on a node first (unplaced objects cannot crash)"
            )
        existing = self.watched.get(obj.alps_name)
        if existing is not None:
            detail = (
                "it is already watched"
                if existing is obj
                else "another watched object already uses that name"
            )
            raise ObjectModelError(
                f"{self.alps_name}: cannot watch {obj.alps_name!r} — {detail}"
            )
        self.watched[obj.alps_name] = obj
        self.faults.supervise(obj)
        return obj

    @entry(returns=1)
    def report(self):
        return list(self.restarts)

    def _recover_ready(self) -> None:
        """Restart every watched object whose node is back up."""
        kernel = self.kernel
        for name, obj in self.watched.items():
            if not obj._crashed:
                continue
            node = obj.node
            if node is not None and not self.faults.node_up(node.name):
                continue  # still down; the restart transition will wake us
            obj.restart()
            requeued = 0
            for call in self.faults.take_interrupted(obj):
                if self.faults.requeue(call):
                    requeued += 1
            self.restarts.append((kernel.clock.now, name, requeued))
            kernel.metrics.counter(
                "supervisor.restarts", "Watched objects restarted after a crash",
                legacy="supervisor_restarts",
            ).inc()
            kernel.trace.record(
                kernel.clock.now, "restart", name,
                by=self.alps_name, requeued=requeued,
            )

    @manager_process(intercepts=[])
    def mgr(self):
        seen = 0
        while True:
            seen = yield self.faults.wait_for_events(seen)
            if self.reaction_delay:
                yield Delay(self.reaction_delay)
            self._recover_ready()
