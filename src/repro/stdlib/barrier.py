"""A cyclic barrier — combining applied to synchronization.

Demonstrates the §2.7 idea ("the manager can combine some of the pending
requests") on a pure synchronization object: ``arrive`` calls accumulate
— the manager accepts them but starts nothing — and when the party is
complete every caller is finished at once.  Each call is answered with
the arrival rank and the generation number, so no body process ever runs:
the barrier is implemented *entirely* by manager combining.
"""

from __future__ import annotations

from ..core import AcceptGuard, AlpsObject, Finish, entry, manager_process
from ..kernel.syscalls import Select


class Barrier(AlpsObject):
    """``object Barrier`` — N-party cyclic barrier via manager combining.

    Configuration: ``parties`` (how many ``arrive`` calls complete a
    generation).  ``arrive`` returns ``(rank, generation)``.
    """

    def setup(self, parties: int = 2) -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.parties = parties
        self.generation = 0

    @entry(returns=2, array="parties")
    def arrive(self):
        """Never started: the manager answers by combining (§2.7)."""
        raise AssertionError("barrier bodies are never executed")

    @manager_process(intercepts=["arrive"])
    def mgr(self):
        waiting = []
        while True:
            result = yield Select(AcceptGuard(self, "arrive"))
            waiting.append(result.value)
            if len(waiting) == self.parties:
                generation = self.generation
                self.generation += 1
                for rank, call in enumerate(waiting):
                    # finish-without-start: fabricate all results (§2.7).
                    yield Finish(call, rank, generation)
                waiting = []
