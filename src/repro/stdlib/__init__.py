"""Ready-made ALPS objects: the paper's worked examples plus classics.

* :class:`BoundedBuffer` — §2.4.1 (manager as monitor).
* :class:`Database` — §2.5.1 readers–writers with a hidden procedure array.
* :class:`Dictionary` — §2.7.1 request combining.
* :class:`Spooler` — §2.8.1 hidden parameters and results.
* :class:`ParallelBuffer` — §2.8.2 parallel bounded buffer.
* :class:`DiskScheduler` — SCAN via run-time guard priorities.
* :class:`Barrier`, :class:`ResourceAllocator` — pure manager combining.
* :class:`Supervisor` — crash recovery for watched objects (repro.faults).
* :class:`KVStore` — a writable mapping, the canonical replication target.
* :class:`GatedKVStore` — the same store behind an admitting manager.
"""

from .alarm_clock import AlarmClock
from .barrier import Barrier
from .bounded_buffer import BoundedBuffer
from .dictionary import Dictionary
from .disk_scheduler import DiskScheduler
from .kv_store import GatedKVStore, KVStore
from .parallel_buffer import ParallelBuffer
from .readers_writers import Database
from .resource_allocator import ResourceAllocator
from .spooler import Printer, Spooler
from .supervisor import Supervisor

__all__ = [
    "AlarmClock",
    "BoundedBuffer",
    "Database",
    "Dictionary",
    "Spooler",
    "Printer",
    "ParallelBuffer",
    "DiskScheduler",
    "Barrier",
    "ResourceAllocator",
    "Supervisor",
    "KVStore",
    "GatedKVStore",
]
