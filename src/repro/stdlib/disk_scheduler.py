"""A disk-head (elevator/SCAN) scheduler — run-time guard priorities.

Not one of the paper's worked examples, but exactly the class of
"scheduling policies that require condition (queue) variables in
monitors" the paper claims managers subsume (§1), and a natural showcase
for the run-time ``pri E`` clause of §2.4: among pending requests the
manager accepts the one whose cylinder is closest ahead of the head in
the current sweep direction — the priority expression *uses the
intercepted invocation parameter*.
"""

from __future__ import annotations

from ..core import (
    SHED_PRI_ALWAYS,
    AcceptGuard,
    AlpsObject,
    Reject,
    ShedGuard,
    entry,
    icpt,
    manager_process,
)
from ..kernel.syscalls import Charge, Select


class DiskScheduler(AlpsObject):
    """SCAN scheduling of ``access(cylinder)`` requests.

    Configuration: ``cylinders`` (disk size), ``seek_cost`` (ticks per
    cylinder moved), ``transfer_work`` (ticks per access), ``request_max``
    (hidden array size), ``queue_cap`` (optional admission control: shed
    requests once more than ``queue_cap`` are pending, §2.5.1 ``#P``).
    """

    def setup(
        self,
        cylinders: int = 200,
        seek_cost: int = 1,
        transfer_work: int = 2,
        request_max: int = 16,
        queue_cap: int | None = None,
    ) -> None:
        self.cylinders = cylinders
        self.seek_cost = seek_cost
        self.transfer_work = transfer_work
        self.request_max = request_max
        self.queue_cap = queue_cap
        self.head = 0
        self.direction = 1  # +1 sweeping up, -1 sweeping down
        #: Order in which cylinders were served (tests check SCAN-ness).
        self.service_order: list[int] = []
        self.total_seek = 0

    @entry(array="request_max")
    def access(self, cylinder):
        distance = abs(cylinder - self.head)
        self.total_seek += distance
        if distance * self.seek_cost or self.transfer_work:
            yield Charge(
                distance * self.seek_cost + self.transfer_work, label="seek"
            )
        self.head = cylinder
        self.service_order.append(cylinder)

    def _scan_priority(self, cylinder: int) -> int:
        """SCAN key: ahead-of-head in current direction first, in order."""
        ahead = (cylinder - self.head) * self.direction
        if ahead >= 0:
            return ahead  # 0..cylinders: next in the sweep
        return 2 * self.cylinders - ahead  # behind: served on the way back

    @manager_process(intercepts={"access": icpt(params=1)})
    def mgr(self):
        cap = self.queue_cap
        while True:
            guards = [
                AcceptGuard(
                    self,
                    "access",
                    # pri uses the intercepted parameter (§2.4: priorities
                    # "can possibly use values received by an accept").
                    pri=lambda call: self._scan_priority(call.args[0]),
                ),
            ]
            if cap is not None:
                # The SCAN arm's callable pri is 0..3*cylinders, so the
                # shed arm needs a priority below anything it can produce.
                guards.append(
                    ShedGuard(self, "access", cap=cap, pri=SHED_PRI_ALWAYS)
                )
            result = yield Select(*guards)
            call = result.value
            if isinstance(result.guard, ShedGuard):
                yield Reject(call)
                continue
            cylinder = call.args[0]
            if (cylinder - self.head) * self.direction < 0:
                self.direction = -self.direction  # reverse the sweep
            yield from self.execute(call)
