"""The readers–writers database of §2.5.1.

"A reader's request gets delayed only if a writer is updating the database
or there are too many readers already using the database. ... A writer's
request gets delayed only if a reader or writer is currently using the
database.  No reader or writer should be delayed indefinitely."

This example shows hidden procedure arrays: ``read`` is *defined* as a
single procedure but *implemented* as ``Read[1..ReadMax]``, so up to
``ReadMax`` readers run simultaneously while the manager tracks only a
count.  Starvation freedom follows the paper's program: a read is accepted
when there are no pending writes *or a writer has just used the database*;
a write is accepted when no readers are active and there are no pending
reads *or a writer is due its turn*.
"""

from __future__ import annotations

from typing import Any

from ..core import AcceptGuard, AlpsObject, AwaitGuard, Finish, Start, entry, manager_process
from ..kernel.syscalls import Charge, Select


class Database(AlpsObject):
    """``object Database`` with bounded reader concurrency.

    Configuration: ``read_max`` (max simultaneous readers), ``read_work``
    and ``write_work`` (simulated body service times in ticks).
    """

    def setup(
        self,
        read_max: int = 4,
        read_work: int = 10,
        write_work: int = 20,
        initial: dict | None = None,
    ) -> None:
        if read_max < 1:
            raise ValueError(f"read_max must be >= 1, got {read_max}")
        self.read_max = read_max
        self.read_work = read_work
        self.write_work = write_work
        # The database itself, declared in the shared data part.
        self.data: dict[Any, Any] = dict(initial or {})
        #: Exclusion-invariant instrumentation (checked by tests).
        self.active_readers = 0
        self.active_writers = 0
        self.max_concurrent_readers = 0
        self.exclusion_violations = 0

    @entry(returns=1, array="read_max")
    def read(self, key):
        self.active_readers += 1
        self.max_concurrent_readers = max(
            self.max_concurrent_readers, self.active_readers
        )
        if self.active_writers:
            self.exclusion_violations += 1
        if self.active_readers > self.read_max:
            self.exclusion_violations += 1
        if self.read_work:
            yield Charge(self.read_work, label="read")
        value = self.data.get(key)
        self.active_readers -= 1
        return value

    @entry
    def write(self, key, value):
        self.active_writers += 1
        if self.active_writers > 1 or self.active_readers:
            self.exclusion_violations += 1
        if self.write_work:
            yield Charge(self.write_work, label="write")
        self.data[key] = value
        self.active_writers -= 1

    @manager_process(intercepts=["read", "write"])
    def mgr(self):
        read_count = 0   # active readers
        writer_last = False  # a writer has just used the database
        writing = False
        while True:
            result = yield Select(
                # (i:1..ReadMax) accept Read[i]
                #   when ReadCount < ReadMax and not writing
                #        and (#Write = 0 or WriterLast)
                AcceptGuard(
                    self,
                    "read",
                    when=lambda: (
                        read_count < self.read_max
                        and not writing
                        and (self.pending("write") == 0 or writer_last)
                    ),
                ),
                # accept Write when ReadCount = 0 and not writing
                #   and (#Read = 0 or not WriterLast)
                AcceptGuard(
                    self,
                    "write",
                    when=lambda: (
                        read_count == 0
                        and not writing
                        and (self.pending("read") == 0 or not writer_last)
                    ),
                ),
                # (i:1..ReadMax) await Read[i] => finish Read[i]
                AwaitGuard(self, "read"),
                AwaitGuard(self, "write"),
            )
            fired = result.guard
            call = result.value
            if isinstance(fired, AcceptGuard):
                if call.entry == "read":
                    read_count += 1
                    writer_last = False
                    yield Start(call)  # asynchronous: readers overlap
                else:
                    writing = True
                    yield Start(call)
            else:  # an await fired: endorse the termination
                if call.entry == "read":
                    read_count -= 1
                else:
                    writing = False
                    writer_last = True
                yield Finish(call)
