"""The printer spooler of §2.8.1 — hidden parameters and results.

"After accepting a print request, the object's manager assigns a free
printer and supplies the printer number along with the file descriptor to
the corresponding Print procedure. ... Notice that the Print procedure
also returns the printer number as a hidden result back to the manager.
This eliminates a lot of bookkeeping for the manager to remember which
printer has been allocated to which procedure."

``print_file`` is defined with one parameter (the file) but implemented
with a hidden ``printer`` parameter and a hidden printer-number result.
"""

from __future__ import annotations

from ..core import (
    ACCEPT_PRI,
    AWAIT_PRI,
    SHED_PRI,
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    DeadlineSweepGuard,
    Finish,
    PredictedWaitGuard,
    Reject,
    ShedGuard,
    Start,
    entry,
    manager_process,
)
from ..kernel.syscalls import Charge, Select


class Printer:
    """A simulated printer: prints ``speed`` ticks per page."""

    def __init__(self, number: int, speed: int = 5) -> None:
        self.number = number
        self.speed = speed
        self.pages_printed = 0
        self.jobs: list[str] = []


class Spooler(AlpsObject):
    """``object Spooler`` — schedules print requests onto a printer pool.

    Configuration: ``printers`` (pool size), ``speed`` (ticks per page),
    ``job_max`` (hidden array size = simultaneous print jobs),
    ``queue_cap`` (optional admission control: shed print requests once
    more than ``queue_cap`` are pending, §2.5.1 ``#P``).
    """

    def setup(
        self,
        printers: int = 3,
        speed: int = 5,
        job_max: int = 16,
        queue_cap: int | None = None,
    ) -> None:
        if printers < 1:
            raise ValueError(f"need at least one printer, got {printers}")
        self.printer_pool = [Printer(i, speed) for i in range(printers)]
        self.job_max = job_max
        self.queue_cap = queue_cap
        #: Busy intervals per printer for the utilization benchmark.
        self.busy_intervals: dict[int, list[tuple[int, int]]] = {
            p.number: [] for p in self.printer_pool
        }

    @entry(array="job_max", hidden_params=1, hidden_results=1)
    def print_file(self, file, printer):
        """Print ``file`` on the hidden-parameter ``printer``.

        Body signature is ``(File; Printer)`` where ``Printer`` is hidden;
        it returns the printer number as a hidden result so the manager
        can reclaim it without bookkeeping.
        """
        pages = max(1, len(str(file)) // 8)
        start = self.kernel.clock.now
        yield Charge(pages * printer.speed, label="print")
        printer.pages_printed += pages
        printer.jobs.append(str(file))
        self.busy_intervals[printer.number].append((start, self.kernel.clock.now))
        return printer.number

    @manager_process(intercepts=["print_file"])
    def mgr(self):
        free = list(range(len(self.printer_pool)))  # free printer numbers
        cap = self.queue_cap
        while True:
            if cap is None:
                guards = [
                    # accept Print[i] when a printer is free
                    AcceptGuard(self, "print_file", when=lambda: bool(free)),
                    # (i) await Print[i](printer#) => reclaim the printer
                    AwaitGuard(self, "print_file"),
                ]
            else:
                # pri-preference for in-flight work: reclaim printers
                # before admitting; shed before admitting under overload.
                guards = [
                    AwaitGuard(self, "print_file", pri=AWAIT_PRI),
                    DeadlineSweepGuard(self, "print_file"),
                    PredictedWaitGuard(self, "print_file"),
                    ShedGuard(self, "print_file", cap=cap, pri=SHED_PRI),
                    AcceptGuard(self, "print_file", when=lambda: bool(free),
                                pri=ACCEPT_PRI),
                ]
            result = yield Select(*guards)
            call = result.value
            if isinstance(result.guard, ShedGuard):
                yield Reject(call, reason=result.guard.reason)
            elif isinstance(result.guard, AcceptGuard):
                number = free.pop(0)
                # start Print[i](file, printer) — hidden parameter.
                yield Start(call, self.printer_pool[number])
            else:
                # The hidden result tells the manager which printer to
                # reclaim — no allocation table needed.
                (printer_number,) = call.hidden_results
                free.append(printer_number)
                yield Finish(call)
