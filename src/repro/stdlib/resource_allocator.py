"""A counting resource allocator — acceptance conditions on parameters.

Shows the SR-style acceptance conditions of §2.4: "we allow the boolean
condition appearing in a guard to depend ... also on the values
(parameters ...) received by an accept".  An ``acquire(amount)`` request
is accepted only when ``amount`` units are actually available — the
condition reads the intercepted invocation parameter — so small requests
overtake large ones that cannot yet be satisfied (no head-of-line
blocking), while ``pri`` can optionally serve the *largest* satisfiable
request first (best-fit) instead.
"""

from __future__ import annotations

from ..core import (
    SHED_PRI_ALWAYS,
    AcceptGuard,
    AlpsObject,
    Finish,
    Reject,
    ShedGuard,
    entry,
    icpt,
    manager_process,
)
from ..kernel.syscalls import Select


class ResourceAllocator(AlpsObject):
    """``object Allocator`` — ``acquire(n)`` / ``release(n)`` of ``total`` units.

    Configuration: ``total`` (units available), ``policy`` — ``"fifo"``
    (any satisfiable request, attachment order) or ``"best-fit"``
    (largest satisfiable request first, via run-time ``pri``),
    ``queue_cap`` (optional admission control on ``acquire``: shed once
    more than ``queue_cap`` acquires are pending; ``release`` is never
    shed — it returns capacity and must always get through).

    Both entries are pure synchronization: the manager answers them by
    combining (§2.7), so no server processes are ever created.
    """

    def setup(
        self,
        total: int = 10,
        policy: str = "fifo",
        request_max: int = 16,
        queue_cap: int | None = None,
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if policy not in ("fifo", "best-fit"):
            raise ValueError(f"unknown policy {policy!r}")
        self.total = total
        self.policy = policy
        self.request_max = request_max
        self.queue_cap = queue_cap
        self.available = total
        #: (time, available) after every state change, for tests.
        self.history: list[tuple[int, int]] = []

    @entry(array="request_max")
    def acquire(self, amount):
        raise AssertionError("allocator bodies are never executed")

    @entry(array="request_max")
    def release(self, amount):
        raise AssertionError("allocator bodies are never executed")

    @manager_process(
        intercepts={"acquire": icpt(params=1), "release": icpt(params=1)}
    )
    def mgr(self):
        while True:
            acquire_guard = AcceptGuard(
                self,
                "acquire",
                # Acceptance condition on the intercepted parameter.
                when=lambda amount: 0 <= amount <= self.available,
                # best-fit: among satisfiable requests take the largest.
                pri=(
                    (lambda call: -call.args[0])
                    if self.policy == "best-fit"
                    else None
                ),
            )
            guards = [acquire_guard, AcceptGuard(self, "release")]
            if self.queue_cap is not None:
                # Shed acquires only; the best-fit pri is -amount, so the
                # shed arm must undercut any negated request size.
                guards.append(
                    ShedGuard(
                        self, "acquire", cap=self.queue_cap, pri=SHED_PRI_ALWAYS
                    )
                )
            result = yield Select(*guards)
            call = result.value
            if isinstance(result.guard, ShedGuard):
                yield Reject(call)
                continue
            amount = call.args[0]
            if call.entry == "acquire":
                self.available -= amount
            else:
                self.available = min(self.total, self.available + amount)
            self.history.append((self.kernel.clock.now, self.available))
            yield Finish(call)  # combining: no body, no results
