"""The bounded buffer of §2.4.1.

"A producer and a consumer exchange messages via a bounded buffer object
which defines two entry procedures Deposit and Remove. ... a call to
Deposit is accepted only if the buffer is not full and a call to Remove is
accepted only if the buffer is not empty. ... When the manager accepts a
call to Deposit or Remove, it starts the procedure execution but waits
until the procedure terminates before accepting another call."

This is the paper's first example: the manager provides monitor-style
mutual exclusion via the packaged ``execute``, and the synchronization
conditions live in acceptance guards instead of condition variables.
``Count`` is local to the manager; ``inptr``/``outptr`` live in the shared
data part and are touched only by the (mutually excluded) bodies.
"""

from __future__ import annotations

from typing import Any

from ..core import (
    ACCEPT_PRI,
    SHED_PRI,
    AcceptGuard,
    AlpsObject,
    DeadlineSweepGuard,
    PredictedWaitGuard,
    Reject,
    ShedGuard,
    entry,
    manager_process,
)
from ..kernel.syscalls import Charge, Select


class BoundedBuffer(AlpsObject):
    """``object Buffer`` — manager-synchronized bounded buffer.

    Configuration: ``size`` (slot count), ``work`` (simulated ticks each
    body spends copying the message; 0 by default), ``queue_cap``
    (optional admission control: when more than ``queue_cap`` calls of
    one entry are pending — the paper's ``#P``, §2.5.1 — the excess is
    shed with :class:`~repro.errors.AdmissionError` instead of queueing
    without bound).
    """

    def setup(self, size: int = 8, work: int = 0, queue_cap: int | None = None) -> None:
        if size < 1:
            raise ValueError(f"buffer size must be >= 1, got {size}")
        self.size = size
        self.work = work
        self.queue_cap = queue_cap
        self.buf: list[Any] = [None] * size
        self.inptr = 0
        self.outptr = 0

    @entry
    def deposit(self, message):
        if self.work:
            yield Charge(self.work, label="deposit")
        self.buf[self.inptr] = message
        self.inptr = (self.inptr + 1) % self.size

    @entry(returns=1)
    def remove(self):
        if self.work:
            yield Charge(self.work, label="remove")
        message = self.buf[self.outptr]
        self.outptr = (self.outptr + 1) % self.size
        return message

    @manager_process(intercepts=["deposit", "remove"])
    def mgr(self):
        # "The variable Count - which is local to the manager - is used to
        # maintain the state of the buffer."
        count = 0
        cap = self.queue_cap
        while True:
            if cap is None:
                guards = [
                    AcceptGuard(self, "deposit", when=lambda: count < self.size),
                    AcceptGuard(self, "remove", when=lambda: count > 0),
                ]
            else:
                # Admission control: under overload (#P > cap) the shed
                # arms outrank the service arms, so the backlog drains at
                # reject cost instead of growing without bound.
                guards = [
                    # Sweep dead calls and shed doomed deadlined calls
                    # before the plain queue cap; all outrank admission.
                    DeadlineSweepGuard(self, "deposit"),
                    DeadlineSweepGuard(self, "remove"),
                    PredictedWaitGuard(self, "deposit"),
                    PredictedWaitGuard(self, "remove"),
                    ShedGuard(self, "deposit", cap=cap, pri=SHED_PRI),
                    ShedGuard(self, "remove", cap=cap, pri=SHED_PRI),
                    AcceptGuard(self, "deposit", when=lambda: count < self.size,
                                pri=ACCEPT_PRI),
                    AcceptGuard(self, "remove", when=lambda: count > 0,
                                pri=ACCEPT_PRI),
                ]
            result = yield Select(*guards)
            call = result.value
            if isinstance(result.guard, ShedGuard):
                yield Reject(call, reason=result.guard.reason)
                continue
            # execute = start; await; finish — the manager "waits until
            # the procedure terminates before accepting another call".
            yield from self.execute(call)
            count += 1 if call.entry == "deposit" else -1
