"""repro.obs.regress — benchmark trajectory and perf-regression gate.

The benchmark suite writes one ``BENCH_E<k>.json`` per experiment —
virtual-time numbers that are fully deterministic for a given source
tree, so any change is a *real* behavioural change, not noise.  This
module keeps those numbers honest across PRs:

* ``BENCH_HISTORY.jsonl`` is the committed trajectory: one JSON line per
  recorded experiment run, carrying the git revision and the tracked
  metrics flattened to ``cell:metric`` keys;
* ``--check`` compares freshly generated ``BENCH_E*.json`` files against
  the latest recorded entry per experiment and **fails with a readable
  report** when a tracked metric regresses beyond its tolerance;
* ``--record`` appends the current files to the trajectory (done once
  per perf-relevant PR, after review).

Tracked metrics are declared per experiment in :data:`TRACKED` with a
direction and a relative tolerance; hard invariants (``lost_acked``)
use tolerance 0 against a zero baseline, so *any* acknowledged-write
loss fails the gate.

CLI (also reachable as ``tools/benchdiff.py``)::

    python -m repro.obs.regress --check            # CI gate
    python -m repro.obs.regress --record           # extend the trajectory
    python -m repro.obs.regress --show             # print the trajectory

Exit codes: 0 clean, 1 regression (or empty history on ``--check``),
2 usage/input errors.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Iterable

DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"


class Metric:
    """Direction and tolerance of one tracked benchmark column."""

    __slots__ = ("name", "higher_is_better", "tolerance")

    def __init__(self, name: str, higher_is_better: bool, tolerance: float) -> None:
        self.name = name
        self.higher_is_better = higher_is_better
        #: Relative slack before a move in the bad direction is a
        #: regression (0.0 = any worsening fails).
        self.tolerance = tolerance

    def regressed(self, baseline: float, current: float) -> bool:
        if baseline == 0:
            # Zero baselines are hard floors/ceilings: moving off zero in
            # the bad direction is a regression regardless of tolerance.
            return current < 0 if self.higher_is_better else current > 0
        if self.higher_is_better:
            return current < baseline * (1.0 - self.tolerance)
        return current > baseline * (1.0 + self.tolerance)


class Experiment:
    """Which rows and columns of one ``BENCH_E*.json`` are tracked."""

    __slots__ = ("id_keys", "metrics")

    def __init__(self, id_keys: tuple[str, ...], metrics: Iterable[Metric]) -> None:
        self.id_keys = id_keys
        self.metrics = {m.name: m for m in metrics}


#: The regression contract: per experiment, the row-identifying columns
#: and the metrics gated (direction, relative tolerance).
TRACKED: dict[str, Experiment] = {
    "E1": Experiment(
        ("mechanism", "size"),
        [Metric("ops_per_ktick", higher_is_better=True, tolerance=0.05),
         Metric("switches", higher_is_better=False, tolerance=0.10)],
    ),
    "E12": Experiment(
        ("loss", "policy"),
        [Metric("completed_frac", higher_is_better=True, tolerance=0.02),
         Metric("goodput_per_ktick", higher_is_better=True, tolerance=0.05),
         Metric("p95_response", higher_is_better=False, tolerance=0.10)],
    ),
    "E13": Experiment(
        ("replicas", "plan"),
        [Metric("completed_frac", higher_is_better=True, tolerance=0.02),
         Metric("goodput_per_ktick", higher_is_better=True, tolerance=0.05),
         Metric("lost_acked", higher_is_better=False, tolerance=0.0)],
    ),
    "E14": Experiment(
        ("object", "arrival", "mean_gap"),
        [Metric("goodput_per_ktick", higher_is_better=True, tolerance=0.05),
         Metric("p99", higher_is_better=False, tolerance=0.10),
         # Harness invariant: an `error` outcome is a bug in the driven
         # object, so any move off zero fails the gate.
         Metric("error", higher_is_better=False, tolerance=0.0)],
    ),
    "E15": Experiment(
        ("config", "mean_gap"),
        # goodput_per_ktick exists on the calm knee-sweep rows only,
        # post_goodput on the crash-and-heal rows only; flatten() skips
        # the absent combinations.
        [Metric("goodput_per_ktick", higher_is_better=True, tolerance=0.05),
         Metric("post_goodput", higher_is_better=True, tolerance=0.05),
         # Robustness hard floors: a lost acknowledged write or a broken
         # attempts-conservation check is a correctness bug, so any move
         # off zero fails regardless of tolerance.
         Metric("lost_acked", higher_is_better=False, tolerance=0.0),
         Metric("conservation_violations", higher_is_better=False, tolerance=0.0),
         Metric("error", higher_is_better=False, tolerance=0.0)],
    ),
    "E6SMP": Experiment(
        ("cpus_per_node",),
        [Metric("goodput_per_ktick", higher_is_better=True, tolerance=0.05),
         Metric("p95_response", higher_is_better=False, tolerance=0.10)],
    ),
    "ESPEED": Experiment(
        ("workload",),
        # The virtual outcome is deterministic: any drift in resumption
        # count means the kernel's semantics changed, not its speed.
        [Metric("events", higher_is_better=False, tolerance=0.0),
         # Wall-clock rate is noisy across runners — gate only a gross
         # slowdown (60%), never a speedup.
         Metric("events_per_sec", higher_is_better=True, tolerance=0.6),
         # Live-plane slowdown factor (base rate / live rate, 1.0 = the
         # plane is free).  Only on the -live row; same wall-clock noise
         # caveat, so only a gross cost explosion fails the gate.
         Metric("live_overhead_x", higher_is_better=False, tolerance=1.0)],
    ),
}


def flatten(payload: dict[str, Any]) -> dict[str, float]:
    """Tracked metrics of one bench payload as ``cell:metric`` → value."""
    experiment = payload.get("experiment", "").upper()
    spec = TRACKED.get(experiment)
    if spec is None:
        return {}
    out: dict[str, float] = {}
    for row in payload.get("rows", []):
        cell = "/".join(str(row.get(k)) for k in spec.id_keys)
        for name in spec.metrics:
            value = row.get(name)
            if isinstance(value, (int, float)):
                out[f"{cell}:{name}"] = value
    return out


def _metric_of(experiment: str, key: str) -> Metric | None:
    spec = TRACKED.get(experiment)
    if spec is None:
        return None
    return spec.metrics.get(key.rsplit(":", 1)[-1])


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------


def load_bench(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def load_history(path: str) -> list[dict[str, Any]]:
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def latest_baselines(history: list[dict[str, Any]]) -> dict[str, dict[str, Any]]:
    """The most recent trajectory entry per experiment."""
    out: dict[str, dict[str, Any]] = {}
    for entry in history:  # file order == record order
        out[entry["experiment"]] = entry
    return out


def record(history_path: str, bench_paths: list[str]) -> list[dict[str, Any]]:
    """Append the given bench files to the trajectory; returns new entries."""
    history = load_history(history_path)
    next_seq = 1 + max((e.get("seq", 0) for e in history), default=0)
    added = []
    for path in bench_paths:
        payload = load_bench(path)
        experiment = payload.get("experiment", "").upper()
        metrics = flatten(payload)
        if not metrics:
            continue  # untracked experiment: nothing to gate
        added.append(
            {
                "experiment": experiment,
                "seq": next_seq,
                "git_rev": payload.get("git_rev", "unknown"),
                "note": payload.get("note", ""),
                "metrics": metrics,
            }
        )
    with open(history_path, "a", encoding="utf-8") as fh:
        for entry in added:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return added


# ----------------------------------------------------------------------
# The check
# ----------------------------------------------------------------------


class Finding:
    """One compared metric: baseline vs current and the verdict."""

    __slots__ = ("experiment", "key", "baseline", "current", "verdict")

    def __init__(self, experiment: str, key: str, baseline: float | None,
                 current: float | None, verdict: str) -> None:
        self.experiment = experiment
        self.key = key
        self.baseline = baseline
        self.current = current
        self.verdict = verdict

    @property
    def delta(self) -> float | None:
        if self.baseline in (None, 0) or self.current is None:
            return None
        return (self.current - self.baseline) / self.baseline

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "metric": self.key,
            "baseline": self.baseline,
            "current": self.current,
            "verdict": self.verdict,
        }


class Report:
    """Outcome of ``--check``: every compared metric plus a verdict."""

    def __init__(self) -> None:
        self.findings: list[Finding] = []
        self.problems: list[str] = []

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.verdict == "REGRESSED"]

    def ok(self) -> bool:
        return not self.regressions and not self.problems

    def render(self) -> str:
        lines = ["# benchdiff: current BENCH_E*.json vs recorded trajectory"]
        by_exp: dict[str, list[Finding]] = {}
        for finding in self.findings:
            by_exp.setdefault(finding.experiment, []).append(finding)
        for experiment in sorted(by_exp):
            findings = by_exp[experiment]
            moved = [f for f in findings if f.verdict != "ok"]
            lines.append(
                f"\n## {experiment}: {len(findings)} metrics checked, "
                f"{len(moved)} moved"
            )
            shown = moved if moved else []
            for finding in shown:
                delta = finding.delta
                delta_txt = "" if delta is None else f" ({delta:+.1%})"
                lines.append(
                    f"  {finding.verdict:>9}  {finding.key}: "
                    f"{finding.baseline} -> {finding.current}{delta_txt}"
                )
            if not moved:
                lines.append("  all tracked metrics within tolerance.")
        for problem in self.problems:
            lines.append(f"\nPROBLEM: {problem}")
        lines.append(
            "\nverdict: "
            + ("OK" if self.ok() else f"{len(self.regressions)} regression(s)"
               + (f", {len(self.problems)} problem(s)" if self.problems else ""))
        )
        return "\n".join(lines)


def check(history_path: str, bench_paths: list[str]) -> Report:
    """Compare current bench files against the recorded trajectory."""
    report = Report()
    history = load_history(history_path)
    if not history:
        report.problems.append(
            f"no recorded trajectory at {history_path}; run --record first"
        )
        return report
    baselines = latest_baselines(history)
    seen: set[str] = set()
    for path in bench_paths:
        try:
            payload = load_bench(path)
        except (OSError, json.JSONDecodeError) as exc:
            report.problems.append(f"cannot read {path}: {exc}")
            continue
        experiment = payload.get("experiment", "").upper()
        if experiment not in TRACKED:
            continue
        seen.add(experiment)
        current = flatten(payload)
        base_entry = baselines.get(experiment)
        if base_entry is None:
            report.problems.append(
                f"{experiment}: present now but absent from the trajectory"
            )
            continue
        base = base_entry["metrics"]
        for key in sorted(set(base) | set(current)):
            metric = _metric_of(experiment, key)
            if metric is None:
                continue
            if key not in current:
                report.findings.append(
                    Finding(experiment, key, base[key], None, "MISSING")
                )
                report.problems.append(
                    f"{experiment}: tracked metric {key} vanished"
                )
                continue
            if key not in base:
                report.findings.append(
                    Finding(experiment, key, None, current[key], "new")
                )
                continue
            if metric.regressed(base[key], current[key]):
                verdict = "REGRESSED"
            elif current[key] != base[key]:
                verdict = "moved"
            else:
                verdict = "ok"
            report.findings.append(
                Finding(experiment, key, base[key], current[key], verdict)
            )
    for experiment in sorted(set(baselines) - seen):
        report.problems.append(
            f"{experiment}: recorded in the trajectory but no current "
            f"BENCH_{experiment}.json was given"
        )
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _default_paths() -> list[str]:
    return sorted(glob.glob("BENCH_E*.json"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchdiff",
        description="Track benchmark trajectories and gate perf regressions.",
    )
    parser.add_argument("benches", nargs="*",
                        help="BENCH_E*.json files (default: glob the cwd)")
    parser.add_argument("--history", default=DEFAULT_HISTORY,
                        help=f"trajectory file (default {DEFAULT_HISTORY})")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="fail if a tracked metric regressed vs the trajectory")
    mode.add_argument("--record", action="store_true",
                      help="append the current bench files to the trajectory")
    mode.add_argument("--show", action="store_true",
                      help="print the recorded trajectory")
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    paths = args.benches or _default_paths()

    if args.show:
        history = load_history(args.history)
        if not history:
            print(f"benchdiff: no trajectory at {args.history}")
            return 1
        for entry in history:
            print(
                f"seq {entry.get('seq')}  {entry['experiment']:>4}  "
                f"rev {entry.get('git_rev', '?')}  "
                f"{len(entry.get('metrics', {}))} metrics  {entry.get('note', '')}"
            )
        return 0

    if not paths:
        print("benchdiff: no BENCH_E*.json files found", file=sys.stderr)
        return 2

    if args.record:
        added = record(args.history, paths)
        for entry in added:
            print(
                f"recorded {entry['experiment']} (seq {entry['seq']}, "
                f"rev {entry['git_rev']}, {len(entry['metrics'])} metrics)"
            )
        if not added:
            print("benchdiff: nothing tracked in the given files", file=sys.stderr)
            return 2
        return 0

    report = check(args.history, paths)
    if args.as_json:
        print(json.dumps(
            {
                "ok": report.ok(),
                "findings": [f.to_dict() for f in report.findings],
                "problems": report.problems,
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(report.render())
    return 0 if report.ok() else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
