"""Typed metrics: counters, gauges and histograms in one registry.

PR 1 and PR 2 accumulated two parallel accounting schemes: hardcoded
integer fields on :class:`~repro.kernel.stats.KernelStats` for the hot
kernel counters, and stringly-typed ``stats.bump("dropped_requests")``
calls sprinkled over the fault, retry and replication layers.  Strings
rot: a typo silently creates a new counter, a renamed key silently
drops a benchmark column, and nothing documents which module owns which
name.

The registry replaces the strings with *declared* metric objects:

* :class:`Counter` — a monotone event count (``inc``);
* :class:`Gauge` — a point-in-time value, either ``set()`` explicitly or
  read through a callable (``fn=``) at snapshot time, so hot paths keep
  updating a plain attribute at zero extra cost;
* :class:`Histogram` — a running count/total/min/max of observations
  (call latencies, queue waits).

Names are dotted by owning layer (``faults.dropped_requests``,
``rpc.messages``, ``replication.failovers``).  Declaring the same name
twice returns the same object (so modules can acquire metrics lazily),
but re-declaring under a different type is an error.

Backward compatibility: a counter declared with ``legacy="old_key"``
mirrors every increment into the kernel's ``stats.custom`` dict under
the old key, so ``KernelStats.snapshot()`` output, the benchmark tables
and every existing test keep seeing the numbers they saw before the
refactor.  New metrics should omit ``legacy``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..errors import KernelError


class MetricError(KernelError):
    """Conflicting or malformed metric declarations."""


class Metric:
    """Common surface: a dotted name plus a one-line help string."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def sample(self) -> dict[str, int | float]:
        """Flat ``{name: value}`` contribution to a registry snapshot."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Counter(Metric):
    """A monotonically increasing event count."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        legacy_store: dict[str, int] | None = None,
        legacy_key: str | None = None,
    ) -> None:
        super().__init__(name, help)
        self.value = 0
        #: Mirror target for pre-registry consumers (``stats.custom``).
        self._legacy_store = legacy_store if legacy_key is not None else None
        self._legacy_key = legacy_key

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        self.value += amount
        store = self._legacy_store
        if store is not None:
            key = self._legacy_key
            store[key] = store.get(key, 0) + amount

    def sample(self) -> dict[str, int | float]:
        return {self.name: self.value}


class Gauge(Metric):
    """A point-in-time value; ``fn`` reads it lazily at snapshot time."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", fn: Callable[[], int | float] | None = None
    ) -> None:
        super().__init__(name, help)
        self._value: int | float = 0
        self.fn = fn

    def set(self, value: int | float) -> None:
        if self.fn is not None:
            raise MetricError(f"gauge {self.name} is callback-backed; cannot set()")
        self._value = value

    @property
    def value(self) -> int | float:
        return self.fn() if self.fn is not None else self._value

    def sample(self) -> dict[str, int | float]:
        return {self.name: self.value}


class Histogram(Metric):
    """Running count/total/min/max over observed values.

    Deliberately bucket-free: the simulator's distributions are examined
    offline from sink artifacts; the registry keeps just the moments the
    benchmark tables print.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.count = 0
        self.total = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def sample(self) -> dict[str, int | float]:
        if not self.count:
            return {f"{self.name}.count": 0}
        return {
            f"{self.name}.count": self.count,
            f"{self.name}.total": self.total,
            f"{self.name}.min": self.min,
            f"{self.name}.max": self.max,
            f"{self.name}.mean": round(self.mean, 2),
        }


class MetricsRegistry:
    """Per-kernel home of every typed metric.

    ``legacy`` is the kernel's ``stats.custom`` dict; counters declared
    with a ``legacy=`` key mirror into it (see module docstring).
    """

    def __init__(self, legacy: dict[str, int] | None = None) -> None:
        self._metrics: dict[str, Metric] = {}
        self._legacy = legacy
        #: legacy keys mirrored by a typed counter (so table builders can
        #: suppress the duplicate ``custom.*`` column).
        self.legacy_keys: set[str] = set()

    # -- declaration (idempotent) ---------------------------------------

    def _declare(self, cls: type, name: str, make: Callable[[], Metric]) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} already declared as {existing.kind}, "
                    f"not {cls.kind}"
                )
            return existing
        metric = make()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", legacy: str | None = None) -> Counter:
        counter = self._declare(
            Counter,
            name,
            lambda: Counter(name, help, legacy_store=self._legacy, legacy_key=legacy),
        )
        if legacy is not None:
            self.legacy_keys.add(legacy)
        return counter

    def gauge(
        self, name: str, help: str = "", fn: Callable[[], int | float] | None = None
    ) -> Gauge:
        gauge = self._declare(Gauge, name, lambda: Gauge(name, help, fn=fn))
        if fn is not None and gauge.fn is None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._declare(Histogram, name, lambda: Histogram(name, help))

    # -- queries ---------------------------------------------------------

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def value(self, name: str, default: int | float = 0) -> int | float:
        """The current value of a counter/gauge (``default`` if undeclared)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def metrics(self) -> Iterable[Metric]:
        return list(self._metrics.values())

    def snapshot(self) -> dict[str, int | float]:
        """Flat dotted-name → value dict over every declared metric."""
        out: dict[str, int | float] = {}
        for name in sorted(self._metrics):
            out.update(self._metrics[name].sample())
        return out
