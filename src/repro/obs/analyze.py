"""repro.obs.analyze — critical-path profiling over recorded span trees.

PR 3 made the observability layer *record* one span tree per entry call;
this module turns those recordings into answers.  Three questions, in
the paper's terms:

* **Where does an entry call's virtual time go?**  Each root ``call``
  span is decomposed into the phases the manager protocol defines —
  RPC request leg, slot-queue wait in the hidden procedure array
  (§2.5), manager ``accept``/``start`` latency, pool-backlog wait (§3),
  body execution, the ``await``/``finish`` handshake, RPC response leg.
  The decomposition is *exact*: any ticks no derived phase covers land
  in an explicit ``unattributed`` bucket, so per-call phase sums always
  equal the end-to-end virtual latency.
* **Which phase dominates?**  Aggregates per entry and over the whole
  recording, with tick counts and shares.
* **What is the longest blocking chain?**  Starting from the slowest
  top-level span, repeatedly descend into the longest child — through a
  replicated write's sequencer span, the primary's entry call, down to
  the body — attributing to every link the ticks its children do not
  explain.  Link self-times telescope back to the root's duration.

Recordings load from any sink format: a Chrome ``trace_event`` file
(``TRACE_E13.json``), a :class:`~repro.obs.sinks.JsonlSink` file, a
:class:`~repro.obs.sinks.MemorySink` record list, or the live
``kernel.obs.spans`` list.  CLI::

    python -m repro.obs.analyze TRACE_E13.json
    python -m repro.obs.analyze TRACE_E13.json --json
    python -m repro.obs.analyze TRACE_E13.json --waitgraph snapshot.json

``--waitgraph`` renders a wait-for-graph snapshot (the JSON written by
``DeadlockError.wait_for.to_json()``) as Graphviz DOT next to the
critical path, so the blocked-on structure and the latency structure of
the same run can be read side by side (see DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import io
import json
import sys
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from .spans import Span

#: Canonical phase order of one managed entry call (plus the §2.7
#: combining short-circuit and the exactness remainder).
PHASES = (
    "request",
    "queue",
    "accept",
    "start",
    "pool",
    "body",
    "finish",
    "response",
    "combined",
    "unattributed",
)

#: (kind, name-suffix) → canonical phase key for derived phase spans.
_PHASE_OF = {
    ("rpc", "request"): "request",
    ("rpc", "response"): "response",
    ("queue", "queue"): "queue",
    ("manager", "accept"): "accept",
    ("manager", "start"): "start",
    ("manager", "finish"): "finish",
    ("manager", "combined"): "combined",
    ("pool", "pool"): "pool",
    ("body", "body"): "body",
}


class SpanRecord:
    """One finished span, format-independent (loaders normalize to this)."""

    __slots__ = ("id", "parent", "kind", "name", "process", "start", "end",
                 "call_id", "attrs")

    def __init__(
        self,
        id: int,
        kind: str,
        name: str,
        process: str,
        start: int,
        end: int,
        parent: int | None = None,
        call_id: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.id = id
        self.parent = parent
        self.kind = kind
        self.name = name
        self.process = process
        self.start = start
        self.end = end
        self.call_id = call_id
        self.attrs = attrs or {}

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanRecord #{self.id} {self.kind}:{self.name} {self.start}..{self.end}>"


class Recording:
    """An indexed set of finished spans (plus instant events)."""

    def __init__(
        self,
        spans: Iterable[SpanRecord],
        instants: list[dict[str, Any]] | None = None,
        source: str = "<memory>",
    ) -> None:
        self.spans = sorted(spans, key=lambda s: (s.start, s.id))
        self.instants = instants or []
        self.source = source
        self.by_id = {s.id: s for s in self.spans}
        self._children: dict[int, list[SpanRecord]] = {}
        for span in self.spans:
            if span.parent is not None:
                self._children.setdefault(span.parent, []).append(span)

    def children(self, span_id: int) -> list[SpanRecord]:
        return self._children.get(span_id, [])

    def top_level(self) -> list[SpanRecord]:
        """Spans whose parent is absent from the recording."""
        return [s for s in self.spans if s.parent not in self.by_id]

    def call_roots(self) -> list[SpanRecord]:
        """Every ``call`` span that is not nested inside another call."""
        return [
            s
            for s in self.spans
            if s.kind == "call"
            and (s.parent not in self.by_id or self.by_id[s.parent].kind != "call")
        ]

    def align_key(self, span: SpanRecord) -> tuple[str, str, int]:
        """Schedule-independent identity of a call root (see ``diff``)."""
        seq = span.attrs.get("seq")
        if seq is None:
            seq = span.call_id if span.call_id is not None else span.id
        return (span.process, span.name, int(seq))

    def __len__(self) -> int:
        return len(self.spans)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

_META_KEYS = ("span_id", "parent", "call_id")


def from_spans(spans: Iterable[Any], source: str = "<memory>") -> Recording:
    """Build a recording from live ``Span`` objects or sink record dicts."""
    records: list[SpanRecord] = []
    instants: list[dict[str, Any]] = []
    for item in spans:
        if isinstance(item, dict):
            if item.get("type") == "event":
                instants.append(item)
                continue
            if item.get("type") not in (None, "span"):
                continue
            if item.get("end") is None:
                continue
            records.append(
                SpanRecord(
                    id=item["id"],
                    parent=item.get("parent"),
                    kind=item["kind"],
                    name=item["name"],
                    process=item.get("process", ""),
                    start=item["start"],
                    end=item["end"],
                    call_id=item.get("call_id"),
                    attrs=dict(item.get("attrs") or {}),
                )
            )
        else:  # a live Span
            if item.end is None:
                continue
            records.append(
                SpanRecord(
                    id=item.span_id,
                    parent=item.parent_id,
                    kind=item.kind,
                    name=item.name,
                    process=item.process,
                    start=item.start,
                    end=item.end,
                    call_id=item.call_id,
                    attrs=dict(item.attrs),
                )
            )
    return Recording(records, instants, source=source)


def from_chrome(payload: dict[str, Any], source: str = "<chrome>") -> Recording:
    """Load the Chrome ``trace_event`` format a ``ChromeTraceSink`` wrote."""
    events = payload.get("traceEvents", [])
    threads: dict[int, str] = {}
    begins: dict[tuple, dict[str, Any]] = {}
    records: list[SpanRecord] = []
    instants: list[dict[str, Any]] = []
    for event in events:
        if not isinstance(event, dict):
            continue
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                threads[event.get("tid")] = event.get("args", {}).get("name", "")
            continue
        if ph == "i":
            instants.append(
                {
                    "type": "event",
                    "time": event.get("ts"),
                    "kind": event.get("name"),
                    "tid": event.get("tid"),
                    "detail": dict(event.get("args") or {}),
                }
            )
            continue
        if ph not in ("b", "e"):
            continue
        key = (event.get("cat"), event.get("id"))
        if ph == "b":
            begins[key] = event
            continue
        start = begins.pop(key, None)
        if start is None:
            continue  # unbalanced; the validator reports these
        args = dict(start.get("args") or {})
        attrs = {k: v for k, v in args.items() if k not in _META_KEYS}
        records.append(
            SpanRecord(
                id=args.get("span_id", start.get("id")),
                parent=args.get("parent"),
                kind=start.get("cat", ""),
                name=start.get("name", ""),
                process=threads.get(start.get("tid"), ""),
                start=start.get("ts", 0),
                end=event.get("ts", 0),
                call_id=args.get("call_id"),
                attrs=attrs,
            )
        )
    # Instant events resolve their process names only after all metadata
    # has been seen (thread_name records may trail in hand-built files).
    for instant in instants:
        instant["process"] = threads.get(instant.pop("tid"), "")
    return Recording(records, instants, source=source)


def load(path: str) -> Recording:
    """Load a recording from a Chrome-trace or JSONL file (sniffed)."""
    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(1)
        fh.seek(0)
        if head == "{":
            first_line = fh.readline()
            try:
                first = json.loads(first_line)
            except json.JSONDecodeError:
                first = None
            if isinstance(first, dict) and first.get("type") in ("span", "event"):
                # JSONL: one record per line.
                fh.seek(0)
                return _load_jsonl(fh, path)
            fh.seek(0)
            payload = json.load(fh)
            if "traceEvents" in payload:
                return from_chrome(payload, source=path)
            raise ValueError(f"{path}: JSON object is not a Chrome trace")
        return _load_jsonl(fh, path)


def _load_jsonl(fh: io.TextIOBase, path: str) -> Recording:
    items = []
    for line in fh:
        line = line.strip()
        if line:
            items.append(json.loads(line))
    return from_spans(items, source=path)


# ----------------------------------------------------------------------
# Per-call phase attribution
# ----------------------------------------------------------------------


class CallProfile:
    """One entry call's end-to-end latency, split into protocol phases."""

    __slots__ = ("key", "call_id", "name", "process", "start", "end",
                 "status", "phases")

    def __init__(self, rec: Recording, root: SpanRecord) -> None:
        self.key = rec.align_key(root)
        self.call_id = root.call_id
        self.name = root.name
        self.process = root.process
        self.start = root.start
        self.end = root.end
        self.status = root.attrs.get("status", "ok")
        self.phases: dict[str, int] = {}
        attributed = 0
        for child in rec.children(root.id):
            phase = _phase_key(child)
            if phase is None:
                continue  # nested calls are their own profiles
            self.phases[phase] = self.phases.get(phase, 0) + child.duration
            attributed += child.duration
        rest = self.total - attributed
        if rest:
            self.phases["unattributed"] = rest

    @property
    def total(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "process": self.process,
            "name": self.name,
            "seq": self.key[2],
            "call_id": self.call_id,
            "start": self.start,
            "end": self.end,
            "total": self.total,
            "status": self.status,
            "phases": {p: self.phases[p] for p in PHASES if p in self.phases},
        }


def _phase_key(span: SpanRecord) -> str | None:
    suffix = span.name.rsplit(".", 1)[-1]
    return _PHASE_OF.get((span.kind, suffix))


def profile_calls(rec: Recording) -> list[CallProfile]:
    """A profile for every non-nested finished call in the recording."""
    return [CallProfile(rec, root) for root in rec.call_roots()]


def aggregate(profiles: Iterable[CallProfile]) -> dict[str, dict[str, Any]]:
    """Per-entry rollup: call count, latency stats, per-phase tick sums."""
    out: dict[str, dict[str, Any]] = {}
    for prof in profiles:
        row = out.setdefault(
            prof.name,
            {"calls": 0, "total": 0, "max": 0,
             "phases": {}, "errors": 0},
        )
        row["calls"] += 1
        row["total"] += prof.total
        row["max"] = max(row["max"], prof.total)
        if prof.status != "ok":
            row["errors"] += 1
        for phase, ticks in prof.phases.items():
            row["phases"][phase] = row["phases"].get(phase, 0) + ticks
    for row in out.values():
        row["mean"] = row["total"] / row["calls"] if row["calls"] else 0.0
    return out


def phase_totals(profiles: Iterable[CallProfile]) -> dict[str, int]:
    totals: dict[str, int] = {}
    for prof in profiles:
        for phase, ticks in prof.phases.items():
            totals[phase] = totals.get(phase, 0) + ticks
    return totals


# ----------------------------------------------------------------------
# The longest blocking chain
# ----------------------------------------------------------------------


class ChainLink:
    """One span on the critical path and the ticks only it explains."""

    __slots__ = ("span", "self_ticks")

    def __init__(self, span: SpanRecord, self_ticks: int) -> None:
        self.span = span
        self.self_ticks = self_ticks

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.span.kind,
            "name": self.span.name,
            "process": self.span.process,
            "start": self.span.start,
            "end": self.span.end,
            "duration": self.span.duration,
            "self": self.self_ticks,
        }


def critical_path(rec: Recording, root: SpanRecord | None = None) -> list[ChainLink]:
    """The longest blocking chain from ``root`` (default: slowest span).

    Descends from the root into the child with the greatest duration at
    every level; each link is charged the ticks its chosen child does
    not cover, so the self-times along the chain sum exactly to the
    root's duration.
    """
    if root is None:
        tops = rec.top_level()
        if not tops:
            return []
        root = max(tops, key=lambda s: (s.duration, -s.start))
    chain: list[ChainLink] = []
    node = root
    while True:
        kids = rec.children(node.id)
        if not kids:
            chain.append(ChainLink(node, node.duration))
            return chain
        pick = max(kids, key=lambda s: (s.duration, -s.start, -s.id))
        chain.append(ChainLink(node, node.duration - pick.duration))
        node = pick


# ----------------------------------------------------------------------
# Flame-graph folded-stack export
# ----------------------------------------------------------------------


def folded_stacks(rec: Recording) -> list[str]:
    """The recording in Brendan Gregg's folded-stack format.

    One line per unique span path, ``frame;frame;... ticks``, where each
    frame is ``kind:name`` (prefixed with the root span's process) and
    the value is the path's **self time**: the ticks the deepest span
    does not delegate to children.  ``flamegraph.pl`` and every
    compatible viewer (speedscope, inferno) render the output directly.

    The export preserves the profiler's exactness contract: the values
    sum to exactly the total duration of the recording's top-level
    spans, so the flame graph and the phase-attribution table describe
    the same ticks.  Instantaneous spans (duration 0) contribute lines
    with value 0 so leaf identity survives the round trip.
    """
    totals: dict[str, int] = {}

    def walk(span: SpanRecord, prefix: tuple[str, ...]) -> None:
        path = prefix + (f"{span.kind}:{span.name}",)
        kids = rec.children(span.id)
        self_ticks = span.duration - sum(k.duration for k in kids)
        if self_ticks != 0 or not kids:
            key = ";".join(path)
            totals[key] = totals.get(key, 0) + self_ticks
        for kid in kids:
            walk(kid, path)

    for root in rec.top_level():
        prefix = (root.process,) if root.process else ()
        walk(root, prefix)
    return [f"{key} {value}" for key, value in sorted(totals.items())]


def parse_folded(lines: Iterable[str]) -> dict[tuple[str, ...], int]:
    """Parse folded-stack lines back to ``frames -> ticks`` (round trip)."""
    out: dict[tuple[str, ...], int] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        out[tuple(stack.split(";"))] = int(value)
    return out


# ----------------------------------------------------------------------
# SVG flame graph (icicle) rendering
# ----------------------------------------------------------------------

_ROW_HEIGHT = 18       #: pixel height of one stack depth
_MIN_LABEL_PX = 40     #: rects narrower than this get a tooltip only
_CHAR_PX = 6.5         #: rough monospace advance used to truncate labels


def _svg_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _frame_color(frame: str) -> str:
    """Deterministic warm-palette fill for a frame name.

    Pure function of the name (CRC32-seeded), so the same frame gets the
    same color in every rendering and across recordings — diffs of two
    flame graphs line up visually.
    """
    import zlib

    h = zlib.crc32(frame.encode("utf-8"))
    r = 205 + (h & 0xFF) % 50
    g = 80 + ((h >> 8) & 0xFF) % 110
    b = ((h >> 16) & 0xFF) % 55
    return f"rgb({r},{g},{b})"


class _IcicleNode:
    """One merged frame of the icicle: self ticks plus children."""

    __slots__ = ("frame", "self_ticks", "children")

    def __init__(self, frame: str) -> None:
        self.frame = frame
        self.self_ticks = 0
        self.children: dict[str, _IcicleNode] = {}

    def total(self) -> int:
        return self.self_ticks + sum(c.total() for c in self.children.values())


def _build_icicle(folded: dict[tuple[str, ...], int]) -> _IcicleNode:
    root = _IcicleNode("all")
    for path, ticks in folded.items():
        node = root
        for frame in path:
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _IcicleNode(frame)
            node = child
        node.self_ticks += ticks
    return root


def render_svg(
    folded: dict[tuple[str, ...], int],
    title: str = "flame graph",
    width: int = 1200,
) -> str:
    """Render folded stacks as a self-contained icicle-layout SVG.

    Root at the top, children below, rect width proportional to the
    subtree's total ticks — the standard flame-graph geometry, emitted
    with no dependency beyond the SVG itself.  Rendering is fully
    deterministic: children are laid out in sorted frame order and
    colors are a pure hash of the frame name, so the same recording
    always produces byte-identical SVG.  Every rect carries a
    ``<title>`` tooltip with the frame, its ticks, and its percentage
    of the total, including rects too narrow for an inline label.
    """
    if width < 100:
        raise ValueError(f"svg width must be >= 100, got {width}")
    root = _build_icicle(folded)
    total = root.total()
    scale = width / total if total else 0.0

    def depth_of(node: _IcicleNode) -> int:
        if not node.children:
            return 1
        return 1 + max(depth_of(c) for c in node.children.values())

    rows = depth_of(root)
    height = rows * _ROW_HEIGHT + 24
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        f'<text x="4" y="14">{_svg_escape(title)} '
        f"&#8212; {total} ticks</text>",
    ]

    def emit(node: _IcicleNode, x: float, depth: int) -> None:
        node_total = node.total()
        w = node_total * scale
        y = 24 + (depth * _ROW_HEIGHT)
        pct = 100.0 * node_total / total if total else 0.0
        tip = _svg_escape(f"{node.frame}: {node_total} ticks ({pct:.1f}%)")
        parts.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" '
            f'height="{_ROW_HEIGHT - 1}" fill="{_frame_color(node.frame)}" '
            f'rx="1"><title>{tip}</title></rect>'
        )
        if w >= _MIN_LABEL_PX:
            label = _svg_escape(node.frame[: max(1, int(w / _CHAR_PX))])
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + 13}">{label}</text>'
            )
        parts.append("</g>")
        child_x = x
        for frame in sorted(node.children):
            child = node.children[frame]
            emit(child, child_x, depth + 1)
            child_x += child.total() * scale

    emit(root, 0.0, 0)
    parts.append("</svg>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Replication classification (sequencer apply vs forward)
# ----------------------------------------------------------------------


def sequencer_breakdown(rec: Recording) -> dict[str, Any] | None:
    """Apply-vs-forward attribution under replication sequencer spans.

    Uses the ``primary`` tag the sequencer records on its span: the
    child call whose target matches is the sequenced apply; every other
    child call is a forward to a backup.
    """
    seq_spans = [s for s in rec.spans if s.kind == "replication"]
    if not seq_spans:
        return None
    apply_ticks = forward_ticks = 0
    applies = forwards = 0
    for seq in seq_spans:
        primary = seq.attrs.get("primary")
        for child in rec.children(seq.id):
            if child.kind != "call":
                continue
            target = child.name.rsplit(".", 1)[0]
            if primary is not None and target == primary:
                applies += 1
                apply_ticks += child.duration
            else:
                forwards += 1
                forward_ticks += child.duration
    return {
        "writes": len(seq_spans),
        "sequencer_ticks": sum(s.duration for s in seq_spans),
        "applies": applies,
        "apply_ticks": apply_ticks,
        "forwards": forwards,
        "forward_ticks": forward_ticks,
    }


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------


def _table(rows: list[list[str]], header: list[str]) -> str:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_report(rec: Recording, top: int = 5) -> str:
    """The human-readable critical-path report for one recording."""
    profiles = profile_calls(rec)
    out: list[str] = []
    out.append(f"# Critical-path profile: {rec.source}")
    processes = {s.process for s in rec.spans if s.process}
    out.append(
        f"{len(rec.spans)} spans over {len(processes)} processes; "
        f"{len(profiles)} entry calls profiled."
    )
    if not profiles:
        out.append("(no finished entry calls in this recording)")
        return "\n".join(out)

    total = sum(p.total for p in profiles)
    totals = phase_totals(profiles)
    out.append("")
    out.append("## Phase attribution (all calls)")
    rows = [
        [phase, totals[phase], f"{100.0 * totals[phase] / total:.1f}%"]
        for phase in PHASES
        if totals.get(phase)
    ]
    out.append(_table(rows, ["phase", "ticks", "share"]))
    out.append(
        f"exact attribution: phase sums equal end-to-end latency for "
        f"{len(profiles)}/{len(profiles)} calls "
        f"(unattributed {totals.get('unattributed', 0)} ticks)."
    )

    out.append("")
    out.append("## Per-entry breakdown")
    agg = aggregate(profiles)
    rows = []
    for name in sorted(agg, key=lambda n: -agg[n]["total"]):
        row = agg[name]
        dominant = max(row["phases"], key=row["phases"].get) if row["phases"] else "-"
        rows.append(
            [name, row["calls"], row["errors"], f"{row['mean']:.1f}",
             row["max"], dominant]
        )
    out.append(_table(rows, ["entry", "calls", "errors", "mean", "max",
                             "dominant"]))

    seq = sequencer_breakdown(rec)
    if seq is not None:
        out.append("")
        out.append("## Replication sequencer")
        out.append(
            f"{seq['writes']} sequenced writes, {seq['sequencer_ticks']} "
            f"ticks in the sequencer: {seq['applies']} primary applies "
            f"({seq['apply_ticks']} ticks), {seq['forwards']} backup "
            f"forwards ({seq['forward_ticks']} ticks)."
        )

    out.append("")
    out.append(f"## Slowest calls (top {top})")
    slow = sorted(profiles, key=lambda p: -p.total)[:top]
    rows = []
    for prof in slow:
        breakdown = " ".join(
            f"{phase}={prof.phases[phase]}"
            for phase in PHASES
            if prof.phases.get(phase)
        )
        rows.append(
            [prof.process, prof.name, prof.key[2], prof.total, prof.status,
             breakdown]
        )
    out.append(_table(rows, ["process", "entry", "seq", "total", "status",
                             "phases"]))

    chain = critical_path(rec)
    out.append("")
    out.append("## Longest blocking chain")
    for depth, link in enumerate(chain):
        span = link.span
        out.append(
            f"{'  ' * depth}{span.kind}:{span.name} [{span.process}] "
            f"{span.start}..{span.end} ({span.duration} ticks, "
            f"{link.self_ticks} self)"
        )
    if chain:
        out.append(
            f"chain self-times sum to {sum(l.self_ticks for l in chain)} "
            f"ticks = the root span's duration."
        )
    out.append("")
    out.append(
        "Hint: render the wait-for graph of a blocked run next to this "
        "report with `python -m repro.analysis --dot snapshot.json` "
        "(snapshot via DeadlockError.wait_for.to_json())."
    )
    return "\n".join(out)


def report_json(rec: Recording, top: int = 5) -> dict[str, Any]:
    """Machine-readable form of :func:`render_report`."""
    profiles = profile_calls(rec)
    return {
        "source": rec.source,
        "spans": len(rec.spans),
        "calls": len(profiles),
        "phase_totals": phase_totals(profiles),
        "entries": aggregate(profiles),
        "sequencer": sequencer_breakdown(rec),
        "profiles": [p.to_dict() for p in profiles],
        "critical_path": [l.to_dict() for l in critical_path(rec)],
    }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Critical-path profile of a recorded span trace.",
    )
    parser.add_argument("trace", help="Chrome-trace or JSONL span recording")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON")
    parser.add_argument("--top", type=int, default=5,
                        help="slowest calls to list (default 5)")
    parser.add_argument("--out", metavar="FILE",
                        help="write the report here instead of stdout")
    parser.add_argument(
        "--waitgraph", metavar="SNAPSHOT",
        help="wait-for snapshot JSON to render as DOT after the report",
    )
    parser.add_argument(
        "--folded", metavar="FILE",
        help="also write the recording as flame-graph folded stacks "
             "(flamegraph.pl / speedscope input); '-' for stdout",
    )
    parser.add_argument(
        "--svg", metavar="FILE",
        help="also render the recording as a self-contained icicle SVG "
             "flame graph; '-' for stdout",
    )
    args = parser.parse_args(argv)

    try:
        rec = load(args.trace)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as exc:
        print(f"analyze: cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2

    if args.folded:
        folded = folded_stacks(rec)
        if args.folded == "-":
            for line in folded:
                print(line)
            return 0
        with open(args.folded, "w", encoding="utf-8") as fh:
            fh.write("\n".join(folded) + ("\n" if folded else ""))

    if args.svg:
        import os

        svg = render_svg(
            parse_folded(folded_stacks(rec)),
            title=os.path.basename(args.trace),
        )
        if args.svg == "-":
            print(svg)
            return 0
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(svg + "\n")

    if args.as_json:
        text = json.dumps(report_json(rec, top=args.top), indent=2,
                          sort_keys=True, default=str)
    else:
        text = render_report(rec, top=args.top)

    if args.waitgraph:
        from ..analysis import to_dot

        try:
            with open(args.waitgraph, "r", encoding="utf-8") as fh:
                snapshot = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"analyze: cannot load {args.waitgraph}: {exc}",
                  file=sys.stderr)
            return 2
        text += "\n\n## Wait-for graph (DOT)\n" + to_dot(snapshot)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
