"""repro.obs.diff — span-tree diffing between two trace recordings.

Debugging question: the same workload ran twice — different seed,
different fault plan, different priorities — and behaved differently.
*Where* do the two runs diverge?  The differ aligns the two recordings
by **call identity** and reports, in protocol terms:

* calls present in only one run (extra retries, calls a crash swallowed);
* calls whose status changed (``ok`` → ``failed``/``timeout``);
* **reordered accepts**: per object, the order in which the manager
  accepted the common calls (§2.4 scheduling), with the first point of
  divergence;
* **replicated-write subtree divergence**: per sequenced write, a
  changed primary, changed forward set, or a changed number of replica
  calls (retries) — the signature of a failover;
* instant-event divergence (crash/drop/timeout markers);
* per-phase latency deltas for every aligned call, aggregated per entry.

Alignment keys are schedule-independent: root call spans carry a ``seq``
attribute — "this caller's n-th call of this entry in program order" —
recorded at issue time, so two runs whose interleavings differ still
align call-for-call.  Spans without the attribute (older recordings,
``replicated`` write roots) fall back to per-(process, name) occurrence
order.

CLI (exit 0 when the recordings are equivalent, 1 when differences are
found, 2 on usage errors)::

    python -m repro.obs.diff TRACE_A.json TRACE_B.json
    python -m repro.obs.diff --json TRACE_A.json TRACE_B.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .analyze import (
    PHASES,
    CallProfile,
    Recording,
    SpanRecord,
    load,
    profile_calls,
)

Key = tuple  # (process, name, seq)


def _fmt_key(key: Key) -> str:
    return f"{key[0]}:{key[1]}#{key[2]}"


class CallDelta:
    """One aligned call pair and its per-phase latency movement (b - a)."""

    __slots__ = ("key", "a", "b")

    def __init__(self, key: Key, a: CallProfile, b: CallProfile) -> None:
        self.key = key
        self.a = a
        self.b = b

    @property
    def total_delta(self) -> int:
        return self.b.total - self.a.total

    def phase_deltas(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for phase in set(self.a.phases) | set(self.b.phases):
            delta = self.b.phases.get(phase, 0) - self.a.phases.get(phase, 0)
            if delta:
                out[phase] = delta
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": _fmt_key(self.key),
            "total_a": self.a.total,
            "total_b": self.b.total,
            "delta": self.total_delta,
            "phases": self.phase_deltas(),
        }


class TraceDiff:
    """The structured result of diffing recording ``a`` against ``b``."""

    def __init__(self, a: Recording, b: Recording) -> None:
        self.a = a
        self.b = b
        prof_a = {p.key: p for p in profile_calls(a)}
        prof_b = {p.key: p for p in profile_calls(b)}
        self.only_a: list[Key] = sorted(set(prof_a) - set(prof_b))
        self.only_b: list[Key] = sorted(set(prof_b) - set(prof_a))
        common = sorted(set(prof_a) & set(prof_b))
        self.matched = [CallDelta(k, prof_a[k], prof_b[k]) for k in common]
        self.status_changes = [
            (k, prof_a[k].status, prof_b[k].status)
            for k in common
            if prof_a[k].status != prof_b[k].status
        ]
        self.reordered_accepts = _reordered_accepts(a, b, set(common))
        self.replication = _replication_divergence(a, b)
        self.instant_divergence = _instant_divergence(a, b)

    # -- verdicts ----------------------------------------------------------

    @property
    def structural_differences(self) -> int:
        return (
            len(self.only_a)
            + len(self.only_b)
            + len(self.status_changes)
            + len(self.reordered_accepts)
            + len(self.replication)
            + len(self.instant_divergence)
        )

    @property
    def latency_differences(self) -> int:
        return sum(1 for d in self.matched if d.total_delta)

    def identical(self) -> bool:
        return self.structural_differences == 0 and self.latency_differences == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "a": self.a.source,
            "b": self.b.source,
            "identical": self.identical(),
            "only_a": [_fmt_key(k) for k in self.only_a],
            "only_b": [_fmt_key(k) for k in self.only_b],
            "status_changes": [
                {"key": _fmt_key(k), "a": sa, "b": sb}
                for k, sa, sb in self.status_changes
            ],
            "reordered_accepts": self.reordered_accepts,
            "replication": self.replication,
            "instants": self.instant_divergence,
            "latency": {
                "changed_calls": self.latency_differences,
                "phase_totals": self.phase_delta_totals(),
            },
            "calls_matched": len(self.matched),
        }

    # -- latency rollups ---------------------------------------------------

    def phase_delta_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for delta in self.matched:
            for phase, ticks in delta.phase_deltas().items():
                totals[phase] = totals.get(phase, 0) + ticks
        return totals

    def top_movers(self, top: int = 5) -> list[CallDelta]:
        return sorted(
            (d for d in self.matched if d.total_delta),
            key=lambda d: -abs(d.total_delta),
        )[:top]


def _accept_order(rec: Recording, common: set[Key]) -> dict[str, list[tuple]]:
    """Per object: common call keys in the order the manager accepted them.

    The accept instant is the end of a call's derived ``accept`` phase
    span (== ``accepted_at``).  Calls that were never accepted (crashed,
    combined before accept, unmanaged) don't participate.
    """
    orders: dict[str, list[tuple]] = {}
    for root in rec.call_roots():
        key = rec.align_key(root)
        if key not in common:
            continue
        for child in rec.children(root.id):
            if child.kind == "manager" and child.name.endswith(".accept"):
                obj = root.name.rsplit(".", 1)[0]
                orders.setdefault(obj, []).append((child.end, child.start, key))
                break
    return {
        obj: [key for _, _, key in sorted(entries)]
        for obj, entries in orders.items()
    }


def _reordered_accepts(
    a: Recording, b: Recording, common: set[Key]
) -> list[dict[str, Any]]:
    orders_a = _accept_order(a, common)
    orders_b = _accept_order(b, common)
    out: list[dict[str, Any]] = []
    for obj in sorted(set(orders_a) | set(orders_b)):
        seq_a = [k for k in orders_a.get(obj, []) if k in set(orders_b.get(obj, []))]
        seq_b = [k for k in orders_b.get(obj, []) if k in set(orders_a.get(obj, []))]
        if seq_a == seq_b:
            continue
        first = next(
            (i for i, (ka, kb) in enumerate(zip(seq_a, seq_b)) if ka != kb),
            min(len(seq_a), len(seq_b)),
        )
        out.append(
            {
                "object": obj,
                "accepts": len(seq_a),
                "first_divergence": first,
                "a": _fmt_key(seq_a[first]) if first < len(seq_a) else None,
                "b": _fmt_key(seq_b[first]) if first < len(seq_b) else None,
            }
        )
    return out


def _write_signature(rec: Recording, root: SpanRecord) -> dict[str, Any]:
    """Structure of one replicated write's subtree (failover signature)."""
    sig: dict[str, Any] = {"status": root.attrs.get("status")}
    for seq in rec.children(root.id):
        if seq.kind != "replication":
            continue
        calls = [c for c in rec.children(seq.id) if c.kind == "call"]
        sig["primary"] = seq.attrs.get("primary")
        sig["forwards"] = sorted(seq.attrs.get("forwards") or [])
        sig["replica_calls"] = sorted(
            c.name.rsplit(".", 1)[0] for c in calls
        )
        sig["attempts"] = len(calls)
    return sig


def _replicated_roots(rec: Recording) -> dict[Key, SpanRecord]:
    """``replicated`` write roots keyed by per-(process, name) occurrence."""
    counters: dict[tuple[str, str], int] = {}
    out: dict[Key, SpanRecord] = {}
    for span in rec.spans:  # already in (start, id) order
        if span.kind != "replicated":
            continue
        ident = (span.process, span.name)
        seq = counters.get(ident, 0)
        counters[ident] = seq + 1
        out[(span.process, span.name, seq)] = span
    return out


def _replication_divergence(a: Recording, b: Recording) -> list[dict[str, Any]]:
    roots_a = _replicated_roots(a)
    roots_b = _replicated_roots(b)
    out: list[dict[str, Any]] = []
    for key in sorted(set(roots_a) | set(roots_b)):
        in_a, in_b = key in roots_a, key in roots_b
        if not (in_a and in_b):
            out.append(
                {"write": _fmt_key(key),
                 "change": "only in A" if in_a else "only in B"}
            )
            continue
        sig_a = _write_signature(a, roots_a[key])
        sig_b = _write_signature(b, roots_b[key])
        if sig_a == sig_b:
            continue
        changed = sorted(
            field
            for field in set(sig_a) | set(sig_b)
            if sig_a.get(field) != sig_b.get(field)
        )
        out.append(
            {
                "write": _fmt_key(key),
                "change": "subtree divergence",
                "fields": changed,
                "a": {f: sig_a.get(f) for f in changed},
                "b": {f: sig_b.get(f) for f in changed},
            }
        )
    return out


def _instant_divergence(a: Recording, b: Recording) -> dict[str, list[int]]:
    """Instant-event kinds whose occurrence counts differ: kind → [a, b]."""
    counts_a: dict[str, int] = {}
    counts_b: dict[str, int] = {}
    for inst in a.instants:
        counts_a[inst["kind"]] = counts_a.get(inst["kind"], 0) + 1
    for inst in b.instants:
        counts_b[inst["kind"]] = counts_b.get(inst["kind"], 0) + 1
    return {
        kind: [counts_a.get(kind, 0), counts_b.get(kind, 0)]
        for kind in sorted(set(counts_a) | set(counts_b))
        if counts_a.get(kind, 0) != counts_b.get(kind, 0)
    }


def diff_recordings(a: Recording, b: Recording) -> TraceDiff:
    """Convenience constructor mirroring the CLI."""
    return TraceDiff(a, b)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def render_diff(diff: TraceDiff, top: int = 5) -> str:
    out: list[str] = []
    out.append(f"# Span-tree diff: {diff.a.source} vs {diff.b.source}")
    out.append(
        f"{len(diff.matched)} calls aligned; "
        f"{len(diff.only_a)} only in A, {len(diff.only_b)} only in B."
    )
    if diff.identical():
        out.append("recordings are equivalent: no differences found.")
        return "\n".join(out)

    if diff.only_a or diff.only_b:
        out.append("")
        out.append("## Unmatched calls")
        for key in diff.only_a[:top]:
            out.append(f"  only in A: {_fmt_key(key)}")
        if len(diff.only_a) > top:
            out.append(f"  ... and {len(diff.only_a) - top} more only in A")
        for key in diff.only_b[:top]:
            out.append(f"  only in B: {_fmt_key(key)}")
        if len(diff.only_b) > top:
            out.append(f"  ... and {len(diff.only_b) - top} more only in B")

    if diff.status_changes:
        out.append("")
        out.append("## Status changes")
        for key, sa, sb in diff.status_changes[:top]:
            out.append(f"  {_fmt_key(key)}: {sa} -> {sb}")
        if len(diff.status_changes) > top:
            out.append(f"  ... and {len(diff.status_changes) - top} more")

    if diff.reordered_accepts:
        out.append("")
        out.append("## Reordered accepts")
        for entry in diff.reordered_accepts:
            out.append(
                f"  {entry['object']}: accept order diverges at position "
                f"{entry['first_divergence']} of {entry['accepts']} "
                f"(A accepted {entry['a']}, B accepted {entry['b']})"
            )

    if diff.replication:
        out.append("")
        out.append("## Replicated writes")
        for entry in diff.replication[:top]:
            if entry["change"] == "subtree divergence":
                out.append(
                    f"  {entry['write']}: {', '.join(entry['fields'])} "
                    f"changed — A {entry['a']} vs B {entry['b']}"
                )
            else:
                out.append(f"  {entry['write']}: {entry['change']}")
        if len(diff.replication) > top:
            out.append(f"  ... and {len(diff.replication) - top} more")

    if diff.instant_divergence:
        out.append("")
        out.append("## Instant events (count A vs B)")
        for kind, (ca, cb) in diff.instant_divergence.items():
            out.append(f"  {kind}: {ca} vs {cb}")

    totals = diff.phase_delta_totals()
    if totals or diff.latency_differences:
        out.append("")
        out.append("## Latency movement (B - A)")
        out.append(f"{diff.latency_differences} aligned calls changed latency.")
        for phase in PHASES:
            if totals.get(phase):
                out.append(f"  {phase}: {totals[phase]:+d} ticks")
        movers = diff.top_movers(top)
        if movers:
            out.append("  top movers:")
            for delta in movers:
                phases = " ".join(
                    f"{p}={v:+d}" for p, v in sorted(delta.phase_deltas().items())
                )
                out.append(
                    f"    {_fmt_key(delta.key)}: {delta.a.total} -> "
                    f"{delta.b.total} ({delta.total_delta:+d}) {phases}"
                )
    return "\n".join(out)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="Diff two span-trace recordings by call identity.",
    )
    parser.add_argument("trace_a", help="baseline recording (A)")
    parser.add_argument("trace_b", help="comparison recording (B)")
    parser.add_argument("--json", action="store_true", dest="as_json")
    parser.add_argument("--top", type=int, default=5,
                        help="entries to list per section (default 5)")
    args = parser.parse_args(argv)

    try:
        rec_a = load(args.trace_a)
        rec_b = load(args.trace_b)
    except (OSError, ValueError, json.JSONDecodeError, KeyError) as exc:
        print(f"diff: cannot load recordings: {exc}", file=sys.stderr)
        return 2

    diff = TraceDiff(rec_a, rec_b)
    if args.as_json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True, default=str))
    else:
        print(render_diff(diff, top=args.top))
    return 0 if diff.identical() else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
