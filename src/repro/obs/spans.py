"""Spans: per-call causality in virtual time.

A :class:`Span` is one named interval of virtual time with a parent
link.  The observability layer builds one *span tree* per entry call:

```
replicated.write kv.put            (client process)
└── replicate kv.put@v3            (write sequencer)
    ├── call kv.put → n0           (the primary's entry call)
    │   ├── rpc.request            (wire latency, client → node)
    │   ├── manager.accept         (issue → accept: receptiveness wait)
    │   ├── manager.start          (accept → body dispatch)
    │   ├── body                   (pool slot executes the entry body)
    │   ├── manager.finish         (await/finish window)
    │   └── rpc.response           (wire latency, node → client)
    └── call kv.put → n2           (forward to a backup)
        └── ...
```

Span ids are allocated from a per-kernel counter so runs are
reproducible; times are virtual ticks, so the exported timeline lines
up exactly with trace events and the benchmark tables.

Zero-cost contract: when observability is disabled no ``Span`` object
is ever allocated on the call path — the phase children above are
*derived* from the timestamps :class:`~repro.core.calls.Call` already
records, at completion time, only when a sink or the in-memory span log
is active.

:class:`TransitionRecord` closes the loop for failover timelines: the
heartbeat and replica view keep their transition logs as plain tuples
(the determinism contract tests compare them across runs), but each
record also carries the id of the span that observed it, so an exported
trace connects detection → promotion → catch-up.
"""

from __future__ import annotations

from typing import Any


class Span:
    """One named interval of virtual time, with a parent link.

    ``end`` is ``None`` while the span is open.  ``attrs`` carries
    small, JSON-safe key/values (entry name, version, verdict, status).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "kind",
        "name",
        "process",
        "start",
        "end",
        "call_id",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        kind: str,
        name: str,
        process: str,
        start: int,
        parent_id: int | None = None,
        call_id: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.process = process
        self.start = start
        self.end: int | None = None
        self.call_id = call_id
        self.attrs = attrs or {}

    @property
    def duration(self) -> int | None:
        return None if self.end is None else self.end - self.start

    def to_record(self) -> dict[str, Any]:
        """Flat JSON-safe dict (the JSONL sink's line format)."""
        record: dict[str, Any] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "process": self.process,
            "start": self.start,
            "end": self.end,
        }
        if self.call_id is not None:
            record["call_id"] = self.call_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tail = "open" if self.end is None else f"{self.start}..{self.end}"
        return f"<Span #{self.span_id} {self.kind}:{self.name} {tail}>"


class TransitionRecord(tuple):
    """A transition tuple that also names the span that observed it.

    Compares (and hashes) exactly like the plain tuple it wraps, so the
    heartbeat/view determinism contracts — ``rep1.view.transitions ==
    rep2.view.transitions`` and bit-identity with pre-span logs — hold
    unchanged, while exporters can follow ``span_id`` into the timeline.
    """

    span_id: int | None

    def __new__(cls, values: tuple, span_id: int | None = None) -> "TransitionRecord":
        self = super().__new__(cls, values)
        self.span_id = span_id
        return self

    def __repr__(self) -> str:
        base = super().__repr__()
        if self.span_id is None:
            return base
        return f"{base}#s{self.span_id}"
