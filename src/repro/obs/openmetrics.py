"""OpenMetrics text exposition for the typed metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the
`OpenMetrics text format <https://openmetrics.io>`_ so a benchmark run
can drop a scrape-compatible artifact next to its JSONL trace (and a
real exporter sidecar could serve it verbatim).

Mapping rules — the registry is bucket-free, so histograms become
summaries plus min/max gauges:

===================  ====================================================
registry metric      OpenMetrics exposition
===================  ====================================================
Counter ``a.b``      ``a_b`` of type ``counter`` (sample ``a_b_total``)
Gauge ``a.b``        ``a_b`` of type ``gauge``
Histogram ``a.b``    ``a_b`` of type ``summary`` (``a_b_count``,
                     ``a_b_sum``) + gauges ``a_b_min`` / ``a_b_max``
===================  ====================================================

Dots in registry names become underscores (OpenMetrics names admit only
``[a-zA-Z0-9_:]``); the original dotted name is preserved in the HELP
line so :func:`parse_openmetrics` can round-trip exactly — the
round-trip is tested, keeping the renderer honest about escaping.
"""

from __future__ import annotations

import re
from typing import Any

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _om_name(dotted: str) -> str:
    """Registry name → OpenMetrics metric name."""
    name = _NAME_OK.sub("_", dotted.replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_help(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):  # pragma: no cover - registry never stores bools
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(registry: MetricsRegistry) -> str:
    """The registry as an OpenMetrics text exposition (ends in ``# EOF``)."""
    lines: list[str] = []
    for metric in sorted(registry.metrics(), key=lambda m: m.name):
        name = _om_name(metric.name)
        # HELP carries "<dotted original>: <help>" so parse can recover
        # the registry name even after underscore folding.
        help_text = _escape_help(
            metric.name + (f": {metric.help}" if metric.help else "")
        )
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"{name}_total {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} summary")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"{name}_count {_fmt(metric.count)}")
            lines.append(f"{name}_sum {_fmt(metric.total)}")
            if metric.count:
                for bound, value in (("min", metric.min), ("max", metric.max)):
                    sub = f"{name}_{bound}"
                    lines.append(f"# TYPE {sub} gauge")
                    lines.append(f"{sub} {_fmt(value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"{name} {_fmt(metric.value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_value(raw: str) -> int | float:
    try:
        return int(raw)
    except ValueError:
        return float(raw)


def parse_openmetrics(text: str) -> dict[str, dict[str, Any]]:
    """Parse an exposition produced by :func:`render_openmetrics`.

    Returns ``{registry_name: {"type": ..., "help": ..., "value"/"count"/
    "sum"/"min"/"max": ...}}`` keyed by the original dotted registry
    names (recovered from the HELP lines).  Raises ``ValueError`` on a
    malformed document or a missing ``# EOF`` terminator.
    """
    metrics: dict[str, dict[str, Any]] = {}  # keyed by OM name
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, om_type = rest.partition(" ")
            metrics.setdefault(name, {})["type"] = om_type.strip()
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            entry = metrics.setdefault(name, {})
            dotted, _, help_part = _unescape_help(help_text).partition(": ")
            entry["name"] = dotted
            entry["help"] = help_part
            continue
        if line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        sample, value = parts[0], _parse_value(parts[1])
        matched = False
        for name, entry in metrics.items():
            om_type = entry.get("type")
            if om_type == "counter" and sample == f"{name}_total":
                entry["value"] = value
                matched = True
            elif om_type == "gauge" and sample == name:
                entry["value"] = value
                matched = True
            elif om_type == "summary" and sample in (
                f"{name}_count",
                f"{name}_sum",
            ):
                entry[sample[len(name) + 1 :]] = value
                matched = True
            if matched:
                break
        if not matched:
            raise ValueError(f"line {lineno}: sample {sample!r} has no TYPE")
    if not saw_eof:
        raise ValueError("missing # EOF terminator")

    # Fold the min/max helper gauges back into their summary, and re-key
    # everything by the original dotted registry name.
    out: dict[str, dict[str, Any]] = {}
    helpers: list[tuple[str, dict[str, Any]]] = []
    for name, entry in metrics.items():
        if entry.get("type") == "gauge" and (
            name.endswith("_min") or name.endswith("_max")
        ):
            base = name.rsplit("_", 1)[0]
            if metrics.get(base, {}).get("type") == "summary":
                helpers.append((name, entry))
                continue
        out[entry.get("name", name)] = entry
    for name, entry in helpers:
        base, bound = name.rsplit("_", 1)
        base_entry = metrics[base]
        out[base_entry.get("name", base)][bound] = entry.get("value")
    return out
