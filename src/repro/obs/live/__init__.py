"""repro.obs.live — the in-run telemetry plane, evaluated in virtual time.

Everything else in :mod:`repro.obs` is post-hoc: spans, traces and bench
tables are examined after the schedule finishes.  The live plane answers
operator questions *while the system runs* — from inside the simulation
(guards and daemons reading aggregates to make decisions: admission,
resharding) and from outside (the ``python -m repro.obs.live`` dashboard
and sink/OpenMetrics exports):

* **sliding-window histograms** and **EWMA rates** over any registered
  metric or explicit sample stream (:mod:`repro.obs.live.stream`);
* **Space-Saving top-K sketches** for hot-key / hot-entry / hot-caller
  detection (:mod:`repro.obs.live.sketch`), consumable as a
  :class:`HotKeyReport`;
* **multi-window SLO burn-rate monitors** emitting a deterministic,
  replay-identical alert event log (:mod:`repro.obs.live.burnrate`).

The determinism contract extends PR 3's schedule-neutrality: the plane
posts **no kernel events**.  Window expiry rides the virtual clock
itself — the plane subscribes to :meth:`~repro.kernel.clock.VirtualClock`
advancement and rolls windows at every crossed ``step`` boundary, in
order, however far one jump travels.  Aggregation is therefore a pure
function of the observed (time, value) stream: with the plane enabled,
schedules are byte-identical to a run without it, and two replays of the
same seed produce byte-identical alert logs and dashboard snapshots
(asserted by ``tests/obs/test_live_neutrality.py`` and the E14/ESPEED
CI gates).

Typical use::

    kernel = Kernel(seed=7)
    plane = kernel.obs.live                  # created on first access
    lat = plane.histogram("kv.latency", window=2000)
    slo = plane.monitor("kv.slo", objective=0.99, fast=1000, slow=5000)
    keys = plane.sketch("kv.keys", capacity=8)
    ... inside the workload: lat.observe(t), slo.record(ok), keys.offer(k) ...
    print(plane.render())                    # deterministic dashboard
    plane.hot_keys("kv.keys").candidates(0.2)  # resharder input
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable

from .burnrate import AlertEvent, BurnRateMonitor
from .sketch import HotKeyReport, SpaceSaving
from .stream import (
    KILOTICK,
    Ewma,
    WindowedCount,
    WindowedHistogram,
    WindowedRate,
    nearest_rank,
)

if TYPE_CHECKING:  # pragma: no cover
    from .. import Observability

__all__ = [
    "LivePlane",
    "LiveHistogram",
    "LiveRate",
    "Ewma",
    "WindowedHistogram",
    "WindowedRate",
    "WindowedCount",
    "nearest_rank",
    "SpaceSaving",
    "HotKeyReport",
    "BurnRateMonitor",
    "AlertEvent",
    "KILOTICK",
]

#: Default evaluation step (boundary granularity) in ticks.
DEFAULT_STEP = 100
#: Default window width in ticks.
DEFAULT_WINDOW = 1000


class LiveHistogram:
    """A :class:`WindowedHistogram` bound to the plane's clock."""

    def __init__(self, plane: "LivePlane", prim: WindowedHistogram) -> None:
        self._plane = plane
        self.prim = prim

    def observe(self, value: int | float) -> None:
        self.prim.observe(value, self._plane.now)

    def percentile(self, p: float) -> int | float | None:
        return self.prim.percentile(p, self._plane.now)

    def count(self) -> int:
        return self.prim.count(self._plane.now)

    def mean(self) -> float | None:
        return self.prim.mean(self._plane.now)

    def state(self) -> dict:
        return self.prim.state(self._plane.now)


class LiveRate:
    """A :class:`WindowedRate` bound to the plane's clock."""

    def __init__(self, plane: "LivePlane", prim: WindowedRate) -> None:
        self._plane = plane
        self.prim = prim

    def mark(self, weight: int = 1) -> None:
        self.prim.mark(self._plane.now, weight)

    def per_ktick(self) -> float:
        return self.prim.per_ktick(self._plane.now)

    def state(self) -> dict:
        return self.prim.state(self._plane.now)


class LiveMonitor:
    """A :class:`BurnRateMonitor` bound to the plane's clock."""

    def __init__(self, plane: "LivePlane", prim: BurnRateMonitor) -> None:
        self._plane = plane
        self.prim = prim

    def record(self, ok: bool) -> None:
        self.prim.record(ok, self._plane.now)

    @property
    def state(self) -> str:
        return self.prim.state

    @property
    def events(self) -> list[AlertEvent]:
        return self.prim.events

    def state_dict(self) -> dict:
        return self.prim.state_dict(self._plane.now)


class LivePlane:
    """Per-kernel streaming aggregation, reachable as ``kernel.obs.live``.

    All registered windows share one evaluation ``step``; window widths
    must be multiples of it.  Declaration is idempotent by name (like
    the metrics registry) so modules can acquire aggregates lazily.
    """

    def __init__(self, obs: "Observability", step: int = DEFAULT_STEP) -> None:
        if step < 1:
            raise ValueError(f"live-plane step must be >= 1, got {step}")
        self.obs = obs
        self.kernel = obs.kernel
        self.step = step
        self.histograms: dict[str, WindowedHistogram] = {}
        self.rates: dict[str, WindowedRate] = {}
        self.sketches: dict[str, SpaceSaving] = {}
        self.monitors: dict[str, BurnRateMonitor] = {}
        #: metric-backed rates: name -> (reader, WindowedCount, last_value)
        self._metric_rates: dict[str, list[Any]] = {}
        self._bound: dict[str, Any] = {}
        #: Calls-watch config (None until :meth:`watch_calls`).
        self._calls: dict[str, Any] | None = None
        self._snapshot_every = 0  #: 0 = no snapshot instants
        self._boundaries = 0
        now = self.kernel.clock.now
        self._next_boundary = (now - now % step) + step
        self.kernel.clock.subscribe(self._on_advance)

    # -- clock-driven window expiry (the plane's "timers") ----------------

    @property
    def now(self) -> int:
        return self.kernel.clock.now

    def _on_advance(self, now: int) -> None:
        """Virtual time moved: roll every window boundary that was crossed.

        One clock jump may cross several boundaries (an idle object, a
        long ``Delay``); each is rolled in order at its own boundary
        time, so EWMA decay, burn-rate evaluation and snapshot instants
        are identical whether time passed in one jump or many.
        """
        while self._next_boundary <= now:
            self._roll(self._next_boundary)
            self._next_boundary += self.step

    def _roll(self, boundary: int) -> None:
        self._boundaries += 1
        for name in sorted(self._metric_rates):
            reader, counts, last = self._metric_rates[name]
            value = reader()
            delta = value - last[0]
            last[0] = value
            if delta > 0:
                counts.mark(boundary - 1, int(delta))
        for name in sorted(self.rates):
            self.rates[name].roll(boundary)
        for name in sorted(self.monitors):
            event = self.monitors[name].roll(boundary)
            if event is not None:
                self._instant(boundary, "live.alert", event.to_dict())
        if self._snapshot_every and self._boundaries % self._snapshot_every == 0:
            self._instant(boundary, "live.snapshot", self.snapshot(boundary))

    def _instant(self, time: int, kind: str, detail: dict) -> None:
        for sink in self.obs.sinks:
            sink.on_instant(time, kind, "live", detail)

    # -- declaration (idempotent by name) ---------------------------------

    def _window(self, window: int | None) -> int:
        if window is None:
            window = max(DEFAULT_WINDOW, self.step)
        if window % self.step:
            raise ValueError(
                f"window ({window}) must be a multiple of the plane step "
                f"({self.step})"
            )
        return window

    def histogram(self, name: str, window: int | None = None) -> LiveHistogram:
        if name not in self.histograms:
            self.histograms[name] = WindowedHistogram(self._window(window), self.step)
            self._bound[f"h:{name}"] = LiveHistogram(self, self.histograms[name])
        return self._bound[f"h:{name}"]

    def rate(self, name: str, window: int | None = None) -> LiveRate:
        if name not in self.rates:
            self.rates[name] = WindowedRate(self._window(window), self.step)
            self._bound[f"r:{name}"] = LiveRate(self, self.rates[name])
        return self._bound[f"r:{name}"]

    def sketch(self, name: str, capacity: int = 8) -> SpaceSaving:
        if name not in self.sketches:
            self.sketches[name] = SpaceSaving(capacity)
        return self.sketches[name]

    def monitor(
        self,
        name: str,
        objective: float = 0.99,
        fast: int | None = None,
        slow: int | None = None,
        threshold: float = 2.0,
        clear: float = 1.0,
    ) -> LiveMonitor:
        if name not in self.monitors:
            fast = self._window(fast) if fast is not None else self._window(None)
            slow = self._window(slow) if slow is not None else 5 * fast
            self.monitors[name] = BurnRateMonitor(
                name, objective, fast, slow, self.step,
                threshold=threshold, clear=clear,
            )
            self._bound[f"m:{name}"] = LiveMonitor(self, self.monitors[name])
        return self._bound[f"m:{name}"]

    def metric_rate(
        self, metric: str, window: int | None = None,
        reader: Callable[[], int | float] | None = None,
    ) -> None:
        """Derive a windowed rate from any registered metric (or reader).

        The metric is sampled at every step boundary; positive deltas
        become window events.  Resolves dotted registry names first
        (``kernel.metrics``), then plain :class:`KernelStats` fields, so
        ``plane.metric_rate("sends")`` watches channel traffic with no
        hot-path hook at all.
        """
        if metric in self._metric_rates:
            return
        if reader is None:
            kernel = self.kernel
            if kernel.metrics.get(metric) is not None:
                reader = lambda: kernel.metrics.value(metric)  # noqa: E731
            elif hasattr(kernel.stats, metric):
                reader = lambda: getattr(kernel.stats, metric)  # noqa: E731
            else:
                raise ValueError(
                    f"metric_rate: {metric!r} is neither a registry metric "
                    f"nor a KernelStats field"
                )
        self._metric_rates[metric] = [
            reader, WindowedCount(self._window(window), self.step), [reader()],
        ]

    # -- convenience recording --------------------------------------------

    def offer(self, sketch_name: str, key: Any, weight: int = 1) -> None:
        """Offer ``key`` to a sketch (declared on first use)."""
        self.sketch(sketch_name).offer(key, weight)

    # -- the entry-call feed (wired from Observability.complete_call) ------

    def watch_calls(
        self,
        window: int | None = None,
        objective: float | None = None,
        fast: int | None = None,
        slow: int | None = None,
        sketch_capacity: int = 8,
    ) -> None:
        """Auto-aggregate every completed entry call.

        Per entry: a latency window histogram (``calls.<entry>``) over
        served calls and a completion rate (all statuses).  Globally:
        hot-entry and hot-(entry, caller) sketches, and — when
        ``objective`` is given — one burn-rate monitor ``calls.slo``
        where "bad" is any non-ok completion.  Requires span recording
        (enables it).
        """
        self.obs.enable()
        self._calls = {
            "window": self._window(window),
            "monitor": (
                self.monitor("calls.slo", objective, fast=fast, slow=slow)
                if objective is not None
                else None
            ),
            "capacity": sketch_capacity,
        }
        self.sketch("calls.entries", sketch_capacity)
        self.sketch("calls.callers", sketch_capacity)

    def on_call(self, entry: str, caller: str, latency: int | None,
                status: str) -> None:
        cfg = self._calls
        if cfg is None:
            return
        window = cfg["window"]
        self.rate(f"calls.{entry}.rate", window).mark()
        if status == "ok" and latency is not None:
            self.histogram(f"calls.{entry}", window).observe(latency)
        self.sketches["calls.entries"].offer(entry)
        self.sketches["calls.callers"].offer(f"{entry}|{caller}")
        if cfg["monitor"] is not None:
            cfg["monitor"].record(status == "ok")

    # -- the in-simulation query API ---------------------------------------

    def service_ewma(self, obj_name: str, entry: str) -> float | None:
        """The live service-time EWMA of one entry (guards read this).

        The same :class:`Ewma` primitive
        :class:`~repro.core.admission.PredictedWaitGuard` reads — one
        estimator, shared by admission control and telemetry, updated on
        every body completion whether or not the plane is observing.
        """
        for obj in self.kernel._alps_objects:
            if getattr(obj, "alps_name", None) == obj_name:
                return obj._entry_runtime(entry).service_ewma
        return None

    def hot_keys(self, sketch_name: str, k: int | None = None) -> HotKeyReport:
        """A consumable :class:`HotKeyReport` (the resharder's input)."""
        sketch = self.sketches.get(sketch_name)
        if sketch is None:
            return HotKeyReport(sketch_name, self.now, 0, [])
        return HotKeyReport(sketch_name, self.now, sketch.total, sketch.top(k))

    # -- export: snapshots, instants, gauges -------------------------------

    def stream_snapshots(self, every: int = 1) -> None:
        """Emit a ``live.snapshot`` instant every ``every`` boundaries."""
        if every < 1:
            raise ValueError(f"snapshot cadence must be >= 1, got {every}")
        self._snapshot_every = every

    def snapshot(self, now: int | None = None) -> dict:
        """Full JSON-able window state (dashboard / instants / tests)."""
        now = self.now if now is None else now
        return {
            "time": now,
            "step": self.step,
            "histograms": {
                name: self.histograms[name].state(now)
                for name in sorted(self.histograms)
            },
            "rates": {
                name: self.rates[name].state(now) for name in sorted(self.rates)
            },
            "metric_rates": {
                name: {
                    "window": entry[1].window,
                    "per_ktick": round(entry[1].per_ktick(now), 3),
                }
                for name, entry in sorted(self._metric_rates.items())
            },
            "sketches": {
                name: self.sketches[name].state()
                for name in sorted(self.sketches)
            },
            "monitors": {
                name: self.monitors[name].state_dict(now)
                for name in sorted(self.monitors)
            },
            "alerts": self.alert_log(),
        }

    def alert_log(self) -> list[dict]:
        """Every monitor transition so far, in (time, monitor) order."""
        events = [
            event
            for name in sorted(self.monitors)
            for event in self.monitors[name].events
        ]
        events.sort(key=lambda e: (e.time, e.monitor))
        return [e.to_dict() for e in events]

    def write_alert_log(self, path: str) -> None:
        """The alert log as JSONL — byte-identical across replays."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.alert_log():
                fh.write(json.dumps(event, sort_keys=True) + "\n")

    def register_gauges(self) -> None:
        """Expose window state as callback gauges on ``kernel.metrics``.

        Every histogram contributes ``live.<name>.p99`` / ``.count``,
        every rate ``live.<name>.per_ktick``, every monitor
        ``live.<name>.slow_burn`` / ``.alerts`` — so the OpenMetrics
        exposition (:func:`repro.obs.render_openmetrics`) carries the
        live window state next to the cumulative counters.
        """
        metrics = self.kernel.metrics

        def hist_reader(name: str, q: float) -> Callable[[], float]:
            def read() -> float:
                value = self.histograms[name].percentile(q, self.now)
                return float(value) if value is not None else 0.0

            return read

        for name in self.histograms:
            metrics.gauge(f"live.{name}.p99", "Live window p99", hist_reader(name, 99))
            metrics.gauge(
                f"live.{name}.count", "Live window sample count",
                (lambda n: lambda: self.histograms[n].count(self.now))(name),
            )
        for name in self.rates:
            metrics.gauge(
                f"live.{name}.per_ktick", "Live window rate",
                (lambda n: lambda: round(self.rates[n].per_ktick(self.now), 3))(name),
            )
        for name in self.monitors:
            metrics.gauge(
                f"live.{name}.slow_burn", "Live slow-window burn rate",
                (lambda n: lambda: round(
                    self.monitors[n].burn(self.now, self.monitors[n].slow), 4
                ))(name),
            )
            metrics.gauge(
                f"live.{name}.alerts", "Burn-rate alerts fired",
                (lambda n: lambda: sum(
                    1 for e in self.monitors[n].events if e.state == "firing"
                ))(name),
            )

    def render(self, width: int = 72) -> str:
        """The deterministic text dashboard for the current state."""
        from .dashboard import render

        return render(self.snapshot(), width=width)
