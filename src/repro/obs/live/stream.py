"""Streaming aggregation primitives evaluated in virtual time.

Everything in this module is *pure*: the primitives never touch a
kernel, a clock, or a sink — they take explicit ``at``/``now`` tick
arguments and fold samples with plain integer/float arithmetic, so two
runs that feed them the same (time, value) sequence produce identical
aggregates.  :class:`~repro.obs.live.LivePlane` binds them to a kernel
clock; tests (and the workloads layer) can also drive them directly.

Window semantics, fixed once for the whole plane:

* a window of width ``W`` queried at time ``now`` covers the half-open
  interval ``(now - W, now]`` — a sample recorded *exactly* at
  ``now - W`` has aged out, a sample recorded at ``now`` counts.  The
  boundary-tick rule is tested explicitly: it is exactly the edge case
  a bucket-granular implementation silently gets wrong;
* samples are bucketed by ``step`` ticks for cheap expiry, but queries
  filter on exact sample times, so percentiles never include an expired
  sample just because its bucket still holds live ones;
* percentiles are **nearest-rank** (an element of the data, never an
  interpolation), computed with exact :class:`~fractions.Fraction`
  arithmetic: ``rank = ceil(p·n/100)``.  The float version
  (``-(-p * n // 100)``) is off by one when ``p·n/100`` is a whole
  number that binary floats overshoot — p16.1 of 1000 samples is
  exactly rank 161, but ``16.1 * 1000`` rounds to ``16100.000000000002``
  and the float ceiling lands on 162.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Sequence

#: Ticks per rate unit: live rates are reported per kilotick, matching
#: the SLO harness (:mod:`repro.workloads.slo`).
KILOTICK = 1000


def nearest_rank(values: Sequence[int | float], p: float) -> int | float | None:
    """Nearest-rank percentile of ``values``; ``None`` on empty input.

    ``p`` is in [0, 100].  The rank is ``ceil(p·n/100)`` computed with
    exact rational arithmetic (``Fraction(str(p))``), so decimal
    percentile specs like ``99.9`` behave as written instead of as their
    nearest binary float.  ``p == 0`` returns the minimum.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not values:
        return None
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    scaled = Fraction(str(p)) * len(ordered) / 100
    rank = int(scaled) if scaled == int(scaled) else int(scaled) + 1
    return ordered[max(1, rank) - 1]


class Ewma:
    """Exponentially weighted moving average of a scalar sample stream.

    The primitive behind per-entry service-time prediction
    (:attr:`~repro.core.runtime.EntryRuntime.service_estimator`, read by
    :class:`~repro.core.admission.PredictedWaitGuard` and the live
    plane's query API).  ``value`` is ``None`` until the first sample,
    so admission decisions are made only from measured evidence.
    """

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: float | None = None
        self.count = 0

    def update(self, sample: int | float) -> float:
        if self.value is None:
            self.value = float(sample)
        else:
            self.value += self.alpha * (sample - self.value)
        self.count += 1
        return self.value


class _Bucketed:
    """Shared step-bucket machinery: a deque of (bucket_start, payload)."""

    def __init__(self, window: int, step: int) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        if window % step:
            raise ValueError(
                f"window ({window}) must be a multiple of step ({step})"
            )
        self.window = window
        self.step = step
        self._buckets: deque = deque()

    def _bucket_start(self, at: int) -> int:
        return at - at % self.step

    def expire(self, now: int) -> None:
        """Drop buckets that cannot contain any live sample at ``now``.

        A bucket starting at ``b`` holds samples with times in
        ``[b, b + step)``; it is dead once ``b + step <= now - window``
        (every time it could hold is ``<= now - window``, and the window
        is open at ``now - window``).
        """
        horizon = now - self.window
        while self._buckets and self._buckets[0][0] + self.step <= horizon:
            self._buckets.popleft()


class WindowedHistogram(_Bucketed):
    """Sliding-window value histogram with exact nearest-rank percentiles.

    Keeps ``(time, value)`` pairs bucketed by ``step``; queries filter on
    exact times so the window boundary is exact even though expiry is
    bucket-granular.  Intended for call latencies and queue depths where
    the sample count inside one window is modest; the simulator examines
    full distributions offline from sinks.
    """

    def observe(self, value: int | float, at: int) -> None:
        start = self._bucket_start(at)
        if not self._buckets or self._buckets[-1][0] != start:
            self._buckets.append((start, []))
        self._buckets[-1][1].append((at, value))

    def samples(self, now: int) -> list[int | float]:
        """Live sample values at ``now`` (window ``(now - W, now]``)."""
        self.expire(now)
        horizon = now - self.window
        return [
            v
            for _start, pairs in self._buckets
            for t, v in pairs
            if horizon < t <= now
        ]

    def count(self, now: int) -> int:
        return len(self.samples(now))

    def percentile(self, p: float, now: int) -> int | float | None:
        """Nearest-rank percentile over the live window; None when empty."""
        return nearest_rank(self.samples(now), p)

    def mean(self, now: int) -> float | None:
        live = self.samples(now)
        return sum(live) / len(live) if live else None

    def rate_per_ktick(self, now: int) -> float:
        """Samples per kilotick over the window."""
        return self.count(now) * KILOTICK / self.window

    def state(self, now: int) -> dict:
        """JSON-able window state (dashboard / OpenMetrics / instants)."""
        live = self.samples(now)
        out: dict = {"count": len(live), "window": self.window}
        if live:
            out["mean"] = round(sum(live) / len(live), 3)
            for label, p in (("p50", 50), ("p99", 99), ("p999", 99.9)):
                out[label] = nearest_rank(live, p)
            out["max"] = max(live)
        else:
            out["mean"] = None
            out["p50"] = out["p99"] = out["p999"] = out["max"] = None
        return out


class WindowedCount(_Bucketed):
    """Sliding-window event counter (the rate/burn-rate substrate).

    Buckets hold plain integer counts, so memory is bounded by
    ``window // step`` regardless of event volume.  The boundary rule is
    necessarily bucket-granular here (individual event times are not
    retained): a bucket counts while any instant it covers is inside the
    window.  All burn-rate and rate queries share this same rule, so
    good/bad ratios always compare like with like.
    """

    def mark(self, at: int, weight: int = 1) -> None:
        start = self._bucket_start(at)
        if not self._buckets or self._buckets[-1][0] != start:
            self._buckets.append((start, [0]))
        self._buckets[-1][1][0] += weight

    def total(self, now: int, window: int | None = None) -> int:
        """Events in the trailing ``window`` (default: full width) at ``now``."""
        self.expire(now)
        width = self.window if window is None else window
        horizon = now - width
        return sum(
            cell[0]
            for start, cell in self._buckets
            if start + self.step > horizon and start <= now
        )

    def per_ktick(self, now: int, window: int | None = None) -> float:
        width = self.window if window is None else window
        return self.total(now, window) * KILOTICK / width


class WindowedRate:
    """A windowed event rate plus an EWMA of the per-step rate.

    ``mark`` records events; :meth:`roll` is driven by the plane at each
    step boundary and folds the finished step's rate into the EWMA.  The
    windowed rate answers "how fast right now"; the EWMA answers "how
    fast lately" with deterministic smoothing (one update per boundary,
    never wall-clock-dependent).
    """

    def __init__(self, window: int, step: int, alpha: float = 0.2) -> None:
        self.counts = WindowedCount(window, step)
        self.ewma = Ewma(alpha)
        self._marks_in_step = 0

    @property
    def window(self) -> int:
        return self.counts.window

    @property
    def step(self) -> int:
        return self.counts.step

    def mark(self, at: int, weight: int = 1) -> None:
        self.counts.mark(at, weight)
        self._marks_in_step += weight

    def roll(self, boundary: int) -> None:
        """A step ended at ``boundary``: fold its rate into the EWMA."""
        self.ewma.update(self._marks_in_step * KILOTICK / self.step)
        self._marks_in_step = 0

    def per_ktick(self, now: int) -> float:
        return self.counts.per_ktick(now)

    def state(self, now: int) -> dict:
        ewma = self.ewma.value
        return {
            "window": self.window,
            "per_ktick": round(self.per_ktick(now), 3),
            "ewma_per_ktick": round(ewma, 3) if ewma is not None else None,
        }
