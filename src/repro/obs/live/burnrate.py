"""Multi-window SLO burn-rate monitors with a deterministic alert log.

An SLO like "99% of requests succeed" grants an error *budget* of 1%.
The **burn rate** over a window is how fast that budget is being spent:

    burn = (bad / total) / (1 - objective)

``burn == 1`` means errors arrive exactly at the sustainable budget
rate; ``burn == 10`` means the window's budget is consumed ten times too
fast.  A single window must trade detection speed against flappiness,
so the monitor uses the standard **multi-window** construction: an alert
fires only when a *fast* window (quick detection, noisy alone) **and** a
*slow* window (evidence the problem is sustained) both exceed the
threshold, and resolves only when both fall below the clear level.

Evaluation happens at every plane step boundary — in virtual time, from
windowed counts the monitor itself recorded — so the alert event log is
a pure function of the observed (time, ok?) stream: replaying a run
reproduces the log byte for byte, which the benches and CI assert.
"""

from __future__ import annotations

from typing import Any

from .stream import WindowedCount


class AlertEvent:
    """One transition of a burn-rate monitor (firing or resolved)."""

    __slots__ = ("time", "monitor", "state", "fast_burn", "slow_burn",
                 "bad", "total")

    def __init__(self, time: int, monitor: str, state: str, fast_burn: float,
                 slow_burn: float, bad: int, total: int) -> None:
        self.time = time
        self.monitor = monitor
        self.state = state  #: "firing" | "resolved"
        self.fast_burn = fast_burn
        self.slow_burn = slow_burn
        #: Slow-window evidence at transition time.
        self.bad = bad
        self.total = total

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "monitor": self.monitor,
            "state": self.state,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "bad": self.bad,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AlertEvent {self.monitor} {self.state} @{self.time} "
            f"fast={self.fast_burn} slow={self.slow_burn}>"
        )


class BurnRateMonitor:
    """Fast+slow window burn-rate alerting over an error budget.

    Parameters
    ----------
    name:
        Alert log / dashboard identity.
    objective:
        Success objective in (0, 1), e.g. ``0.99``; the error budget is
        ``1 - objective``.
    fast, slow:
        Window widths in ticks (``fast < slow``); both must be multiples
        of ``step``.
    step:
        Evaluation granularity — the plane rolls the monitor at every
        ``step`` boundary.
    threshold:
        Burn rate both windows must reach to fire (default 2.0: the
        budget is being spent at twice the sustainable rate).
    clear:
        Burn rate both windows must fall below to resolve (default 1.0).
        ``clear < threshold`` gives the alert hysteresis.
    """

    def __init__(
        self,
        name: str,
        objective: float,
        fast: int,
        slow: int,
        step: int,
        threshold: float = 2.0,
        clear: float = 1.0,
    ) -> None:
        if not 0 < objective < 1:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if fast >= slow:
            raise ValueError(f"fast window ({fast}) must be < slow ({slow})")
        if clear > threshold:
            raise ValueError(
                f"clear level ({clear}) must be <= threshold ({threshold})"
            )
        self.name = name
        self.objective = objective
        self.budget = 1.0 - objective
        self.threshold = threshold
        self.clear = clear
        # One slow-width counter pair serves both windows: total() takes
        # an explicit trailing width, so fast reads are a sub-range.
        self.fast = fast
        self.slow = slow
        self._bad = WindowedCount(slow, step)
        self._total = WindowedCount(slow, step)
        self.state = "ok"  #: "ok" | "firing"
        self.events: list[AlertEvent] = []

    # -- recording -------------------------------------------------------

    def record(self, ok: bool, at: int) -> None:
        """Fold one request outcome in at tick ``at``."""
        self._total.mark(at)
        if not ok:
            self._bad.mark(at)

    # -- evaluation ------------------------------------------------------

    def burn(self, now: int, window: int) -> float:
        """Burn rate over the trailing ``window`` at ``now`` (0 if idle)."""
        total = self._total.total(now, window)
        if not total:
            return 0.0
        return (self._bad.total(now, window) / total) / self.budget

    def roll(self, boundary: int) -> AlertEvent | None:
        """Evaluate at a step boundary; returns the transition, if any."""
        fast_burn = round(self.burn(boundary, self.fast), 4)
        slow_burn = round(self.burn(boundary, self.slow), 4)
        if self.state == "ok":
            if fast_burn >= self.threshold and slow_burn >= self.threshold:
                return self._transition(boundary, "firing", fast_burn, slow_burn)
        else:
            if fast_burn < self.clear and slow_burn < self.clear:
                return self._transition(boundary, "resolved", fast_burn, slow_burn)
        return None

    def _transition(
        self, time: int, state: str, fast_burn: float, slow_burn: float
    ) -> AlertEvent:
        self.state = "firing" if state == "firing" else "ok"
        event = AlertEvent(
            time,
            self.name,
            state,
            fast_burn,
            slow_burn,
            bad=self._bad.total(time),
            total=self._total.total(time),
        )
        self.events.append(event)
        return event

    # -- introspection ---------------------------------------------------

    def state_dict(self, now: int) -> dict[str, Any]:
        return {
            "objective": self.objective,
            "state": self.state,
            "fast_window": self.fast,
            "slow_window": self.slow,
            "threshold": self.threshold,
            "fast_burn": round(self.burn(now, self.fast), 4),
            "slow_burn": round(self.burn(now, self.slow), 4),
            "alerts": sum(1 for e in self.events if e.state == "firing"),
        }
