"""Space-Saving top-K heavy-hitter sketches.

Metwally, Agrawal & El Abbadi's *Space-Saving* algorithm keeps exactly
``capacity`` counters no matter how many distinct keys stream past: a
new key evicts the current minimum counter and inherits its count as an
overestimation ``error``.  The guarantees the resharder cares about:

* every key whose true count exceeds ``total / capacity`` is present;
* for a monitored key, ``count - error <= true count <= count``.

Determinism: ties (equal counts at eviction time) are broken by
insertion order (oldest evicted first), tracked with a monotone
sequence number — never by hash order, so two replays produce the same
sketch byte for byte.  Keys are coerced to ``str`` on entry so sketch
contents survive a JSONL round-trip unchanged (the dashboard renders
from either side of the serialization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class SpaceSaving:
    """Top-K frequency sketch over a key stream (bounded memory)."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"sketch capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: key -> [count, error, seq]; dict order is insertion order but
        #: selection never relies on it (see ``_min_key``).
        self._counters: dict[str, list[int]] = {}
        self._seq = 0
        #: Total weight offered (monitored or not).
        self.total = 0

    def offer(self, key: Any, weight: int = 1) -> None:
        """Count one occurrence of ``key`` (coerced to ``str``)."""
        if weight < 1:
            raise ValueError(f"sketch weight must be >= 1, got {weight}")
        key = str(key)
        self.total += weight
        self._seq += 1
        entry = self._counters.get(key)
        if entry is not None:
            entry[0] += weight
            return
        if len(self._counters) < self.capacity:
            self._counters[key] = [weight, 0, self._seq]
            return
        victim = self._min_key()
        count, _error, _seq = self._counters.pop(victim)
        # The new key inherits the evicted count as its overestimation.
        self._counters[key] = [count + weight, count, self._seq]

    def _min_key(self) -> str:
        return min(
            self._counters,
            key=lambda k: (self._counters[k][0], self._counters[k][2]),
        )

    def top(self, k: int | None = None) -> list[tuple[str, int, int]]:
        """The heaviest keys as ``(key, count, error)``, heaviest first.

        Deterministic order: by count descending, then by insertion
        sequence (older first), so equal counts cannot flap between
        replays.
        """
        ranked = sorted(
            self._counters.items(),
            key=lambda kv: (-kv[1][0], kv[1][2]),
        )
        if k is not None:
            ranked = ranked[:k]
        return [(key, entry[0], entry[1]) for key, entry in ranked]

    def guaranteed(self, key: Any) -> int:
        """Lower bound on the true count of ``key`` (0 if unmonitored)."""
        entry = self._counters.get(str(key))
        return entry[0] - entry[1] if entry is not None else 0

    def state(self, k: int | None = None) -> dict:
        """JSON-able sketch state for instants and the dashboard."""
        return {
            "total": self.total,
            "capacity": self.capacity,
            "top": [list(row) for row in self.top(k)],
        }


@dataclass
class HotKeyReport:
    """A consumable heavy-hitter report (the future resharder's input).

    ``entries`` are ``(key, count, error)`` heaviest-first as of tick
    ``as_of``; ``total`` is the full stream weight, so shares are
    computed against everything offered, not just the monitored keys.
    """

    name: str
    as_of: int
    total: int
    entries: list[tuple[str, int, int]] = field(default_factory=list)

    def share(self, key: Any) -> float:
        """Upper-bound share of the stream attributable to ``key``."""
        if not self.total:
            return 0.0
        for entry_key, count, _error in self.entries:
            if entry_key == str(key):
                return count / self.total
        return 0.0

    def candidates(self, min_share: float = 0.1) -> list[str]:
        """Keys whose *guaranteed* share meets ``min_share``.

        Uses the lower bound ``count - error``, so a key only becomes a
        split/mitigation candidate when it is provably hot — an inherited
        overestimate cannot nominate a cold key.
        """
        if not self.total:
            return []
        return [
            key
            for key, count, error in self.entries
            if (count - error) / self.total >= min_share
        ]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "as_of": self.as_of,
            "total": self.total,
            "entries": [list(row) for row in self.entries],
        }
