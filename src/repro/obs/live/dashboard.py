"""Deterministic text dashboard over live-plane snapshots.

The renderer is a pure function of one snapshot dict — the same dict
:meth:`~repro.obs.live.LivePlane.snapshot` returns in-process and the
same dict a ``live.snapshot`` instant carries through a JSONL sink.
Snapshots are JSON-pure (string keys, lists, rounded floats), so
rendering the in-memory state and rendering the same snapshot after a
serialize/parse round-trip produce byte-identical text; CI replays a
bench run from its JSONL artifact and ``cmp``s the two dashboards.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = ["render", "load_snapshots", "snapshot_at"]


def _fmt(value: Any) -> str:
    """Deterministic scalar formatting: ``-`` for missing values."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _bar(fraction: float, width: int = 20) -> str:
    """A coarse meter: ``#`` per filled cell, clamped to [0, 1]."""
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render(snapshot: dict, width: int = 72) -> str:
    """Render one snapshot dict as the text dashboard."""
    lines: list[str] = []
    rule = "=" * width
    lines.append(rule)
    lines.append(
        f"LIVE TELEMETRY  tick {snapshot.get('time', 0)}"
        f"  (step {snapshot.get('step', '?')})"
    )
    lines.append(rule)

    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines.append("latency windows (nearest-rank percentiles, ticks)")
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<28} n={_fmt(h.get('count')):>5}"
                f"  mean={_fmt(h.get('mean')):>8}"
                f"  p50={_fmt(h.get('p50')):>6}"
                f"  p99={_fmt(h.get('p99')):>6}"
                f"  p999={_fmt(h.get('p999')):>6}"
                f"  max={_fmt(h.get('max')):>6}"
            )

    rates = snapshot.get("rates") or {}
    if rates:
        lines.append("rates (events per kilotick)")
        for name in sorted(rates):
            r = rates[name]
            lines.append(
                f"  {name:<28} now={_fmt(r.get('per_ktick')):>8}"
                f"  ewma={_fmt(r.get('ewma_per_ktick')):>8}"
                f"  window={_fmt(r.get('window'))}"
            )

    metric_rates = snapshot.get("metric_rates") or {}
    if metric_rates:
        lines.append("metric rates (registry/kernel counters per kilotick)")
        for name in sorted(metric_rates):
            r = metric_rates[name]
            lines.append(
                f"  {name:<28} now={_fmt(r.get('per_ktick')):>8}"
                f"  window={_fmt(r.get('window'))}"
            )

    sketches = snapshot.get("sketches") or {}
    if sketches:
        lines.append("heavy hitters (count, +/- overestimation, share)")
        for name in sorted(sketches):
            sk = sketches[name]
            total = sk.get("total", 0)
            lines.append(f"  {name}  total={total}  capacity={_fmt(sk.get('capacity'))}")
            for key, count, error in sk.get("top") or []:
                share = count / total if total else 0.0
                lines.append(
                    f"    {key:<24} {count:>7} +/-{error:<5}"
                    f" {share * 100:5.1f}%  {_bar(share)}"
                )

    monitors = snapshot.get("monitors") or {}
    if monitors:
        lines.append("SLO burn rates (fast+slow windows over the error budget)")
        for name in sorted(monitors):
            m = monitors[name]
            state = str(m.get("state", "?")).upper()
            lines.append(
                f"  {name:<20} slo={_fmt(m.get('objective')):>6}"
                f"  {state:<7}"
                f" fast={_fmt(m.get('fast_burn')):>7}x"
                f" slow={_fmt(m.get('slow_burn')):>7}x"
                f"  alerts={_fmt(m.get('alerts'))}"
            )

    alerts = snapshot.get("alerts") or []
    lines.append(f"alert log ({len(alerts)} events)")
    for event in alerts:
        lines.append(
            f"  t={event.get('time'):>8}  {event.get('monitor'):<20}"
            f" {str(event.get('state', '?')).upper():<9}"
            f" fast={_fmt(event.get('fast_burn'))}x"
            f" slow={_fmt(event.get('slow_burn'))}x"
            f" bad={_fmt(event.get('bad'))}/{_fmt(event.get('total'))}"
        )
    if not alerts:
        lines.append("  (none)")
    lines.append(rule)
    return "\n".join(lines) + "\n"


def load_snapshots(lines: Iterable[str]) -> list[dict]:
    """Extract ``live.snapshot`` instant payloads from JSONL sink lines.

    Malformed lines are skipped (a ``--follow`` reader may see a
    partially written final line); snapshots come back in file order,
    which is virtual-time order by the plane's emission contract.
    """
    snapshots: list[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if (
            isinstance(record, dict)
            and record.get("type") == "event"
            and record.get("kind") == "live.snapshot"
            and isinstance(record.get("detail"), dict)
        ):
            snapshots.append(record["detail"])
    return snapshots


def snapshot_at(snapshots: list[dict], at: int | None) -> dict | None:
    """The latest snapshot, or the latest one no later than tick ``at``."""
    if not snapshots:
        return None
    if at is None:
        return snapshots[-1]
    eligible = [s for s in snapshots if s.get("time", 0) <= at]
    return eligible[-1] if eligible else None
