"""``python -m repro.obs.live`` — the dashboard CLI.

Renders the deterministic text dashboard from a JSONL sink produced by
a run with ``plane.stream_snapshots()`` enabled::

    python -m repro.obs.live run.jsonl              # latest snapshot
    python -m repro.obs.live run.jsonl --at 5000    # as of tick 5000
    python -m repro.obs.live run.jsonl --follow     # tail a live run
    python -m repro.obs.live run.jsonl --out dash.txt

``--follow`` polls the file (wall-clock ``--interval`` seconds) and
re-renders whenever new snapshots appear; the *rendering* stays a pure
function of the snapshot payload, so a followed run and a post-hoc
replay print the same text for the same tick.  Exit status 2 means the
file held no ``live.snapshot`` instants.
"""

from __future__ import annotations

import argparse
import sys
import time

from .dashboard import load_snapshots, render, snapshot_at


def _read_lines(path: str) -> list[str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.readlines()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(1)


def _emit(text: str, out: str | None) -> None:
    if out is None:
        sys.stdout.write(text)
    else:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.live",
        description="Render the live-telemetry dashboard from a JSONL sink.",
    )
    parser.add_argument("path", help="JSONL sink file with live.snapshot instants")
    parser.add_argument(
        "--at", type=int, default=None,
        help="render the latest snapshot at or before this tick",
    )
    parser.add_argument(
        "--out", default=None, help="write the dashboard to a file instead of stdout"
    )
    parser.add_argument(
        "--width", type=int, default=72, help="dashboard width in columns"
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="keep polling the file and re-render on new snapshots",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="poll interval in seconds for --follow",
    )
    parser.add_argument(
        "--max-polls", type=int, default=0,
        help="stop --follow after this many polls (0 = run until EOF stops "
             "growing is never assumed; interrupt to stop)",
    )
    args = parser.parse_args(argv)

    if not args.follow:
        snapshots = load_snapshots(_read_lines(args.path))
        chosen = snapshot_at(snapshots, args.at)
        if chosen is None:
            print(f"no live.snapshot instants in {args.path}", file=sys.stderr)
            return 2
        _emit(render(chosen, width=args.width), args.out)
        return 0

    rendered = 0
    polls = 0
    while True:
        snapshots = load_snapshots(_read_lines(args.path))
        if len(snapshots) > rendered:
            _emit(render(snapshots[-1], width=args.width), args.out)
            rendered = len(snapshots)
        polls += 1
        if args.max_polls and polls >= args.max_polls:
            return 0 if rendered else 2
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


if __name__ == "__main__":
    raise SystemExit(main())
