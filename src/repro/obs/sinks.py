"""Pluggable trace sinks: where spans and events go.

Three consumers share one producer-side surface:

* the existing in-memory :class:`~repro.kernel.tracing.Trace` stays the
  kernel's event log (tests assert on it, unchanged);
* :class:`JsonlSink` streams every span/event as one JSON object per
  line — greppable, diffable, loadable with ``pandas.read_json``;
* :class:`ChromeTraceSink` writes the Chrome ``trace_event`` format, so
  a benchmark run opens directly in ``chrome://tracing`` or
  https://ui.perfetto.dev with per-process tracks and nested spans.

Sinks receive *finished* spans (the observability layer emits at span
end, when the duration is known) plus instant events forwarded from the
kernel trace.  A sink must implement ``on_span``/``on_instant``/
``close``; :class:`MemorySink` is the trivial in-memory implementation
used by tests and the bench harness.

Virtual ticks map 1:1 onto trace-viewer microseconds: one tick renders
as 1µs, keeping the timeline axis equal to the paper's tick counts.
"""

from __future__ import annotations

import io
import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .spans import Span


class TraceSink:
    """Base sink: override any of the three hooks."""

    def on_span(self, span: "Span") -> None:
        """A span finished (``span.end`` is set)."""

    def on_instant(
        self, time: int, kind: str, process: str, detail: dict[str, Any]
    ) -> None:
        """A point event occurred (kernel trace events, annotations)."""

    def close(self) -> None:
        """Flush and release resources; further emissions are undefined."""


class MemorySink(TraceSink):
    """Keeps every record as a dict, for tests and in-process queries."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def on_span(self, span: "Span") -> None:
        self.records.append(span.to_record())

    def on_instant(
        self, time: int, kind: str, process: str, detail: dict[str, Any]
    ) -> None:
        self.records.append(
            {"type": "event", "time": time, "kind": kind, "process": process,
             "detail": dict(detail)}
        )

    def spans(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r["type"] == "span"]

    def close(self) -> None:
        pass


class JsonlSink(TraceSink):
    """One JSON object per line, appended as the run progresses.

    ``target`` is a path or an open text file object (the latter lets
    tests pass ``io.StringIO()``).
    """

    def __init__(self, target: str | io.TextIOBase) -> None:
        if isinstance(target, (str, bytes)):
            self.path: str | None = str(target)
            self._fh: Any = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self.path = None
            self._fh = target
            self._owns = False
        self.lines = 0

    def _write(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.lines += 1

    def on_span(self, span: "Span") -> None:
        self._write(span.to_record())

    def on_instant(
        self, time: int, kind: str, process: str, detail: dict[str, Any]
    ) -> None:
        self._write(
            {"type": "event", "time": time, "kind": kind, "process": process,
             "detail": dict(detail)}
        )

    def close(self) -> None:
        if self._fh is not None and self._owns:
            self._fh.close()
        self._fh = None


class ChromeTraceSink(TraceSink):
    """Chrome ``trace_event`` JSON: open the output in Perfetto.

    Spans become async begin/end pairs (``"ph": "b"``/``"e"``) keyed by
    span id, so parent/child call phases nest on the timeline; instants
    become ``"ph": "i"`` marks.  Processes map to ``tid`` tracks under
    one ``pid`` so each ALPS process gets its own row.
    """

    def __init__(self, path: str, pid: int = 1) -> None:
        self.path = path
        self.pid = pid
        self.events: list[dict[str, Any]] = []
        self._tids: dict[str, int] = {}
        self._closed = False

    def _tid(self, process: str) -> int:
        tid = self._tids.get(process)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[process] = tid
        return tid

    def on_span(self, span: "Span") -> None:
        tid = self._tid(span.process or "?")
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        if span.call_id is not None:
            args["call_id"] = span.call_id
        args.update(span.attrs)
        common = {
            "cat": span.kind,
            "name": span.name,
            "id": span.span_id,
            "pid": self.pid,
            "tid": tid,
        }
        self.events.append({**common, "ph": "b", "ts": span.start, "args": args})
        self.events.append({**common, "ph": "e", "ts": span.end})

    def on_instant(
        self, time: int, kind: str, process: str, detail: dict[str, Any]
    ) -> None:
        self.events.append(
            {
                "cat": kind,
                "name": kind,
                "ph": "i",
                "ts": time,
                "pid": self.pid,
                "tid": self._tid(process or "?"),
                "s": "t",
                "args": {str(k): repr(v) for k, v in detail.items()},
            }
        )

    def payload(self) -> dict[str, Any]:
        # Thread name metadata gives Perfetto readable track labels.
        meta = [
            {
                "ph": "M", "name": "thread_name", "pid": self.pid, "tid": tid,
                "args": {"name": process},
            }
            for process, tid in sorted(self._tids.items(), key=lambda kv: kv[1])
        ]
        return {"traceEvents": meta + self.events, "displayTimeUnit": "ms"}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w", encoding="utf-8") as fh:
            json.dump(self.payload(), fh)


def validate_chrome_trace(payload: Any) -> list[str]:
    """Check a Chrome-trace payload; returns a list of problems.

    Used by the CI trace-validation step and the sink tests: the payload
    must be well-formed, non-empty, and every async span begin (``"b"``)
    must pair with exactly one end (``"e"``) of the same id/category at
    a tick no earlier than its begin.

    Live-plane instants (``cat`` starting with ``live.``) get their own
    checks: timestamps must be non-decreasing in file order (the plane
    emits at step boundaries, in boundary order — any inversion means a
    sink reordered them), ``live.alert`` instants must carry the alert
    fields and alternate firing/resolved per monitor, and
    ``live.snapshot`` instants must carry their evaluation time.
    """
    problems: list[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a dict with a 'traceEvents' key"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    spans = [e for e in events if isinstance(e, dict) and e.get("ph") in ("b", "e")]
    if not any(e.get("ph") != "M" for e in events if isinstance(e, dict)):
        problems.append("trace contains no events")
    begins: dict[tuple, dict] = {}
    for event in spans:
        for field in ("name", "id", "ts", "cat"):
            if field not in event:
                problems.append(f"span event missing {field!r}: {event!r}")
        key = (event.get("cat"), event.get("id"))
        if event.get("ph") == "b":
            if key in begins:
                problems.append(f"duplicate begin for span {key}")
            begins[key] = event
        else:
            start = begins.pop(key, None)
            if start is None:
                problems.append(f"end without begin for span {key}")
            elif not isinstance(event.get("ts"), (int, float)) or event["ts"] < start["ts"]:
                problems.append(f"span {key} ends before it begins")
    for key in begins:
        problems.append(f"begin without end for span {key}")

    def unquote(value: Any) -> str:
        # ChromeTraceSink reprs instant arg values; strip string quotes.
        text = str(value)
        if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
            return text[1:-1]
        return text

    last_ts: int | float | None = None
    alert_states: dict[str, str] = {}
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "i":
            continue
        cat = str(event.get("cat", ""))
        if not cat.startswith("live."):
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"live instant missing numeric ts: {event!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"live instants out of order: ts {ts} after {last_ts}"
            )
        last_ts = ts
        args = event.get("args") or {}
        if cat == "live.alert":
            for field in ("monitor", "state", "fast_burn", "slow_burn"):
                if field not in args:
                    problems.append(f"live.alert at ts {ts} missing {field!r}")
            monitor = unquote(args.get("monitor", "?"))
            state = unquote(args.get("state", "?"))
            if state not in ("firing", "resolved"):
                problems.append(
                    f"live.alert for {monitor} has bad state {state!r}"
                )
            else:
                prev = alert_states.get(monitor)
                expected = "firing" if prev in (None, "resolved") else "resolved"
                if state != expected:
                    problems.append(
                        f"monitor {monitor}: {state!r} at ts {ts} does not "
                        f"alternate (previous state {prev!r})"
                    )
                alert_states[monitor] = state
        elif cat == "live.snapshot" and "time" not in args:
            problems.append(f"live.snapshot at ts {ts} missing 'time'")
    return problems


def validate_live_jsonl(lines: Any) -> list[str]:
    """Check live-plane instants in a JSONL sink dump; returns problems.

    Same contract as the Chrome-trace checks, applied to the JSONL side:
    every line must be a JSON object; ``live.*`` event times must be
    non-decreasing in file order; ``live.alert`` events must carry the
    alert payload and alternate firing/resolved per monitor;
    ``live.snapshot`` events must embed their evaluation time.
    """
    problems: list[str] = []
    last_time: int | float | None = None
    alert_states: dict[str, str] = {}
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            problems.append(f"line {lineno}: not valid JSON")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {lineno}: not a JSON object")
            continue
        kind = record.get("kind", "")
        if record.get("type") != "event" or not str(kind).startswith("live."):
            continue
        time = record.get("time")
        if not isinstance(time, (int, float)):
            problems.append(f"line {lineno}: live event missing numeric time")
            continue
        if last_time is not None and time < last_time:
            problems.append(
                f"line {lineno}: live events out of order "
                f"(time {time} after {last_time})"
            )
        last_time = time
        detail = record.get("detail")
        if not isinstance(detail, dict):
            problems.append(f"line {lineno}: live event missing detail dict")
            continue
        if kind == "live.alert":
            for field in ("monitor", "state", "fast_burn", "slow_burn"):
                if field not in detail:
                    problems.append(f"line {lineno}: live.alert missing {field!r}")
            monitor = str(detail.get("monitor", "?"))
            state = detail.get("state")
            if state not in ("firing", "resolved"):
                problems.append(
                    f"line {lineno}: live.alert for {monitor} has bad "
                    f"state {state!r}"
                )
            else:
                prev = alert_states.get(monitor)
                expected = "firing" if prev in (None, "resolved") else "resolved"
                if state != expected:
                    problems.append(
                        f"line {lineno}: monitor {monitor}: {state!r} does "
                        f"not alternate (previous state {prev!r})"
                    )
                alert_states[monitor] = state
        elif kind == "live.snapshot" and "time" not in detail:
            problems.append(f"line {lineno}: live.snapshot missing 'time'")
    return problems
