"""repro.obs — the unified observability layer.

One subsystem answers "where does virtual time go inside an object?"
(the question every claim in the paper reduces to — manager
receptiveness §1/§3, polling cost §3, combining's saved work §2.7):

* **spans** (:mod:`repro.obs.spans`) — one span tree per entry call,
  client issue → RPC hop → queue wait → manager accept/start/await/
  finish → body on a pool slot → reply, stitched across the replication
  sequencer and failover;
* **typed metrics** (:mod:`repro.obs.metrics`) — declared ``Counter``/
  ``Gauge``/``Histogram`` objects per module instead of stringly
  ``stats.bump(...)`` calls, registered on ``kernel.metrics``;
* **sinks** (:mod:`repro.obs.sinks`) — the in-memory kernel ``Trace``
  (unchanged), JSONL, and Chrome ``trace_event`` for Perfetto.

The :class:`Observability` facade lives on every kernel as
``kernel.obs`` but is *disabled* by default.  The zero-cost contract:
while disabled, the call path performs exactly one attribute test and
allocates nothing — deterministic schedules, interleaving-asserting
tests and benchmark numbers are bit-identical with the layer off.

Typical use::

    kernel = Kernel(seed=7)
    sink = kernel.obs.add_sink(ChromeTraceSink("run.json"))  # enables
    ... run the workload ...
    kernel.obs.close()          # writes run.json; open in Perfetto
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .metrics import Counter, Gauge, Histogram, MetricError, MetricsRegistry
from .openmetrics import parse_openmetrics, render_openmetrics
from .sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    TraceSink,
    validate_chrome_trace,
)
from .spans import Span, TransitionRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..core.calls import Call
    from ..kernel.kernel import Kernel
    from ..kernel.process import Process

__all__ = [
    "Observability",
    "Span",
    "TransitionRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "validate_chrome_trace",
    "render_openmetrics",
    "parse_openmetrics",
]


class Observability:
    """Per-kernel span recorder and sink fan-out (``kernel.obs``).

    ``enabled`` gates every producer-side hook; :meth:`add_sink` turns
    it on.  Span ids come from a per-kernel counter, so two runs with
    the same seed export identical timelines.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.enabled = False
        self.sinks: list[TraceSink] = []
        #: Finished spans, retained in memory while enabled (tests, the
        #: bench harness and ad-hoc queries read these directly).
        self.spans: list[Span] = []
        self.keep_spans = True
        #: Lifetime count of Span objects allocated — the zero-cost
        #: tests assert this stays 0 on a disabled kernel.
        self.span_count = 0
        self._next_span_id = 1
        #: Per-(process, call-name) issue counters; the ``seq`` attr they
        #: produce makes root call spans alignable across two runs of the
        #: same workload (see :mod:`repro.obs.diff`).
        self._call_seq: dict[tuple[str, str], int] = {}
        self._trace_forwarded = False
        self._latency: Histogram | None = None
        #: Lazily created live telemetry plane (:mod:`repro.obs.live`).
        self._live: Any = None

    @property
    def live(self) -> Any:
        """The kernel's :class:`~repro.obs.live.LivePlane`, created on
        first access.  Creation subscribes to the virtual clock but posts
        no events and records nothing until aggregates are declared, so
        merely touching ``kernel.obs.live`` keeps schedules unchanged."""
        if self._live is None:
            from .live import LivePlane

            self._live = LivePlane(self)
        return self._live

    # -- switches ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True
        if self._latency is None:
            self._latency = self.kernel.metrics.histogram(
                "calls.latency", "Entry-call response time in ticks (spans on)"
            )

    def disable(self) -> None:
        self.enabled = False

    def add_sink(self, sink: TraceSink, forward_trace: bool = True) -> TraceSink:
        """Attach ``sink`` (enables the layer) and return it.

        With ``forward_trace`` the kernel's trace events also stream to
        the sink as instants — even when in-memory trace retention is
        off (``Trace.record`` fires listeners regardless).
        """
        self.sinks.append(sink)
        self.enable()
        if forward_trace and not self._trace_forwarded:
            self.kernel.trace.subscribe(self._forward_trace_event)
            self._trace_forwarded = True
        return sink

    def close(self) -> None:
        """Flush and close every sink (idempotent per sink contract)."""
        for sink in self.sinks:
            sink.close()

    # -- span recording ---------------------------------------------------

    def begin(
        self,
        kind: str,
        name: str,
        process: str = "",
        parent: "Span | int | None" = None,
        call_id: int | None = None,
        at: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at ``at`` (default: now).  Caller must :meth:`end` it."""
        self.span_count += 1
        span_id = self._next_span_id
        self._next_span_id += 1
        return Span(
            span_id,
            kind,
            name,
            process,
            self.kernel.clock.now if at is None else at,
            parent_id=parent.span_id if isinstance(parent, Span) else parent,
            call_id=call_id,
            attrs=attrs or None,
        )

    def end(self, span: Span, at: int | None = None, **attrs: Any) -> None:
        """Close ``span`` and deliver it to the span log and sinks."""
        span.end = self.kernel.clock.now if at is None else at
        if attrs:
            span.attrs.update(attrs)
        self._deliver(span)

    def emit(
        self,
        kind: str,
        name: str,
        *,
        start: int,
        end: int,
        process: str = "",
        parent: "Span | int | None" = None,
        call_id: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-closed interval (derived phase spans)."""
        span = self.begin(
            kind, name, process=process, parent=parent, call_id=call_id,
            at=start, **attrs,
        )
        span.end = end
        self._deliver(span)
        return span

    def instant(self, kind: str, process: str = "", **detail: Any) -> None:
        """A point annotation delivered straight to the sinks."""
        now = self.kernel.clock.now
        for sink in self.sinks:
            sink.on_instant(now, kind, process, detail)

    def _deliver(self, span: Span) -> None:
        if self.keep_spans:
            self.spans.append(span)
        for sink in self.sinks:
            sink.on_span(span)

    def _forward_trace_event(self, event: Any) -> None:
        for sink in self.sinks:
            sink.on_instant(event.time, event.kind, event.process, event.detail)

    # -- the entry-call hooks --------------------------------------------

    def call_issued(self, call: "Call", proc: "Process") -> None:
        """Open the root span of an entry call (hot path; enabled only).

        ``seq`` counts this caller's issues of this entry in program
        order — a schedule-independent identity, so the differ can align
        "writer's 3rd put" across runs whose interleavings diverge.
        """
        name = f"{call.obj.alps_name}.{call.entry}"
        key = (proc.name, name)
        seq = self._call_seq.get(key, 0)
        self._call_seq[key] = seq + 1
        call.span = self.begin(
            "call",
            name,
            process=proc.name,
            parent=proc.span,
            call_id=call.call_id,
            seq=seq,
        )

    def complete_call(self, call: "Call", status: str = "ok") -> None:
        """Close a call's span tree, deriving phase children.

        The phases come from the timestamps :class:`~repro.core.calls.Call`
        already records — no per-transition allocation ever happens on
        the call path, even with the layer enabled.  Safe to invoke from
        every completion route (finish, unmanaged completion, body
        failure, timeout expiry, crash detection); the first wins.
        """
        root = call.span
        if root is None:
            return
        call.span = None
        finish = call.finished_at
        if finish is None:
            finish = self.kernel.clock.now
        rid = root.span_id
        cid = call.call_id
        entry = call.entry
        manager = getattr(call.obj, "manager_process", None)
        mname = manager.name if manager is not None else root.process

        def phase(kind: str, name: str, start: int | None, stop: int | None,
                  process: str) -> None:
            if start is None or stop is None or stop < start:
                return
            self.emit(kind, name, start=start, end=stop, process=process,
                      parent=rid, call_id=cid)

        request_delay = root.attrs.get("request_delay", 0)
        arrived = None if call.issued_at is None else call.issued_at + request_delay
        if request_delay:
            phase("rpc", f"{entry}.request", call.issued_at, arrived, root.process)
        # finished_at includes the response leg once the caller resumes.
        reply_at = finish - call.response_delay if call.response_delay else finish
        if call.combined:
            # §2.7 combining: accept → finish with no body at all.
            phase("manager", f"{entry}.combined", call.accepted_at, reply_at, mname)
        else:
            phase("queue", f"{entry}.queue", arrived, call.attached_at, mname)
            phase("manager", f"{entry}.accept", call.attached_at, call.accepted_at,
                  mname)
            phase("manager", f"{entry}.start", call.accepted_at, call.started_at,
                  mname)
            body = call.body_process
            bname = body.name if body is not None else mname
            dispatched = call.dispatched_at
            if (
                dispatched is not None
                and call.started_at is not None
                and dispatched > call.started_at
            ):
                # The pool's backlog held the started call before a worker
                # freed up (§3 shared pools): split the wait out of the
                # body so the profiler can attribute it.
                phase("pool", f"{entry}.pool", call.started_at, dispatched,
                      mname)
                phase("body", f"{entry}.body", dispatched, call.body_done_at,
                      bname)
            else:
                phase("body", f"{entry}.body", call.started_at,
                      call.body_done_at, bname)
            phase("manager", f"{entry}.finish", call.body_done_at, reply_at, mname)
        if call.response_delay:
            phase("rpc", f"{entry}.response", reply_at, finish, root.process)
        if self._latency is not None and call.issued_at is not None:
            self._latency.observe(finish - call.issued_at)
        live = self._live
        if live is not None:
            latency = None if call.issued_at is None else finish - call.issued_at
            live.on_call(entry, root.process, latency, status)
        self.end(root, at=finish, status=status)

    # -- queries ----------------------------------------------------------

    def find_spans(self, kind: str | None = None, name: str | None = None) -> list[Span]:
        """Finished spans filtered by kind and/or name substring."""
        out = []
        for span in self.spans:
            if kind is not None and span.kind != kind:
                continue
            if name is not None and name not in span.name:
                continue
            out.append(span)
        return out

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]
