"""E6 (§3): server-process pool strategies under expensive process creation.

Claims reproduced: when dynamic process creation is expensive, dynamic
per-call creation inflates call latency; preallocating one process per
array slot removes the per-call cost; a shared pool of M << N processes
keeps the process count low "for resources in high demand where the
average queue length is significant" at a modest latency cost.
"""

from __future__ import annotations

import pytest

from repro.core import PoolConfig
from repro.core.monitoring import response_times
from repro.kernel import CostModel, Kernel, Par
from repro.net import Network
from repro.stdlib import Dictionary
from repro.workloads import word_corpus

from harness import print_table, write_results

REQUESTS = 60
CORPUS = word_corpus(REQUESTS)  # all-distinct words: no combining noise
ENTRIES = {w: f"d-{w}" for w in CORPUS}
HEAVY = CostModel(process_create=300, lwp_create=5, context_switch=1)


def drive(pool: PoolConfig, label: str) -> dict:
    kernel = Kernel(costs=HEAVY)
    dictionary = Dictionary(
        kernel,
        entries=ENTRIES,
        search_max=16,
        search_work=30,
        combining=False,
        pool=pool,
        record_calls=True,
    )

    def client(word):
        return (yield dictionary.search(word))

    def main():
        return (yield Par(*[lambda w=w: client(w) for w in CORPUS]))

    kernel.run_process(main)
    calls = dictionary.completed_calls("search")
    summary = response_times(calls)
    return {
        "pool": label,
        "workers_peak": dictionary.pool.max_busy,
        "preallocation": dictionary.pool.preallocation_cost,
        "queued_starts": dictionary.pool.queued_starts,
        "mean_response": round(summary.mean, 1),
        "p95_response": summary.p95,
        "elapsed": kernel.clock.now,
    }


def run_experiment() -> list[dict]:
    return [
        drive(PoolConfig("dynamic", lightweight=False), "dynamic(heavy)"),
        drive(PoolConfig("dynamic", lightweight=True), "dynamic(lwp)"),
        drive(PoolConfig("per-slot"), "per-slot N=16"),
        drive(PoolConfig("shared", size=8), "shared M=8"),
        drive(PoolConfig("shared", size=4), "shared M=4"),
        drive(PoolConfig("shared", size=2), "shared M=2"),
    ]


def test_e6_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E6 pool strategies: {REQUESTS} bursty requests, "
            f"process creation = 300 ticks",
            rows,
            note="per-slot/shared preallocate (cost charged up front)",
        )
    by_label = {r["pool"]: r for r in rows}
    # Dynamic heavy creation inflates latency vs preallocated slots.
    assert (
        by_label["per-slot N=16"]["mean_response"]
        < by_label["dynamic(heavy)"]["mean_response"]
    )
    # Shared pools bound the worker population...
    assert by_label["shared M=4"]["workers_peak"] <= 4
    assert by_label["shared M=2"]["workers_peak"] <= 2
    # ...at the price of queued starts and growing latency as M shrinks.
    assert by_label["shared M=2"]["queued_starts"] > 0
    assert (
        by_label["shared M=2"]["p95_response"]
        >= by_label["shared M=8"]["p95_response"]
    )


# -- E6SMP: the same shared pool on a finite SMP node -------------------
#
# The base E6 table runs on the unbounded machine, so pool bodies only
# contend for *slots*, never for CPUs.  This sweep places the dictionary
# on one node with a node-local scheduling domain of 1..8 virtual CPUs
# (repro.kernel.sched): a 4-worker shared pool is CPU-starved at
# cpus_per_node=1 and runs its bodies truly in parallel at 4.


def drive_smp(cpus: int) -> dict:
    kernel = Kernel(costs=HEAVY)
    net = Network(kernel, name="smp")
    node = net.add_node("server", cpus=cpus)
    dictionary = Dictionary(
        kernel,
        entries=ENTRIES,
        search_max=16,
        search_work=30,
        combining=False,
        pool=PoolConfig("shared", size=4),
        record_calls=True,
    )
    node.place(dictionary)

    def client(word):
        return (yield dictionary.search(word))

    def main():
        return (yield Par(*[lambda w=w: client(w) for w in CORPUS]))

    kernel.run_process(main)
    calls = dictionary.completed_calls("search")
    summary = response_times(calls)
    elapsed = kernel.clock.now
    return {
        "cpus_per_node": cpus,
        "goodput_per_ktick": round(len(calls) * 1000 / elapsed, 2),
        "mean_response": round(summary.mean, 1),
        "p95_response": summary.p95,
        "elapsed": elapsed,
        "migrations": kernel.stats.migrations,
        "steals": kernel.stats.steals,
    }


def run_smp_experiment() -> list[dict]:
    return [drive_smp(cpus) for cpus in (1, 2, 4, 8)]


def test_e6_smp_scaling(benchmark, capsys):
    rows = benchmark.pedantic(run_smp_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E6SMP shared pool M=4 on one node, cpus_per_node sweep",
            rows,
            note="node-local SMP domain; clients on the unbounded machine",
        )
    write_results(
        "E6SMP",
        rows,
        note="shared M=4 dictionary pool on a single node, CPU sweep",
    )
    by_cpus = {r["cpus_per_node"]: r for r in rows}
    # More CPUs per node must buy real goodput: the 4-worker pool wants
    # 4 CPUs, so the 4-CPU node clears >1.5x the 1-CPU node's rate.
    assert (
        by_cpus[4]["goodput_per_ktick"]
        >= 1.5 * by_cpus[1]["goodput_per_ktick"]
    ), rows
    assert by_cpus[2]["goodput_per_ktick"] > by_cpus[1]["goodput_per_ktick"]
    # Past the pool size extra CPUs stop helping (no more runnable
    # bodies than workers) — 8 CPUs is no worse, not magically better.
    assert by_cpus[8]["elapsed"] <= by_cpus[4]["elapsed"]


@pytest.mark.parametrize(
    "mode,size", [("dynamic", None), ("per-slot", None), ("shared", 4)]
)
def test_e6_speed(benchmark, mode, size):
    pool = PoolConfig(mode, size=size, lightweight=(mode != "dynamic"))
    benchmark(drive, pool, mode)


if __name__ == "__main__":
    print_table("E6", run_experiment())
