"""E6 (§3): server-process pool strategies under expensive process creation.

Claims reproduced: when dynamic process creation is expensive, dynamic
per-call creation inflates call latency; preallocating one process per
array slot removes the per-call cost; a shared pool of M << N processes
keeps the process count low "for resources in high demand where the
average queue length is significant" at a modest latency cost.
"""

from __future__ import annotations

import pytest

from repro.core import PoolConfig
from repro.core.monitoring import response_times
from repro.kernel import CostModel, Kernel, Par
from repro.stdlib import Dictionary
from repro.workloads import word_corpus

from harness import print_table

REQUESTS = 60
CORPUS = word_corpus(REQUESTS)  # all-distinct words: no combining noise
ENTRIES = {w: f"d-{w}" for w in CORPUS}
HEAVY = CostModel(process_create=300, lwp_create=5, context_switch=1)


def drive(pool: PoolConfig, label: str) -> dict:
    kernel = Kernel(costs=HEAVY)
    dictionary = Dictionary(
        kernel,
        entries=ENTRIES,
        search_max=16,
        search_work=30,
        combining=False,
        pool=pool,
        record_calls=True,
    )

    def client(word):
        return (yield dictionary.search(word))

    def main():
        return (yield Par(*[lambda w=w: client(w) for w in CORPUS]))

    kernel.run_process(main)
    calls = dictionary.completed_calls("search")
    summary = response_times(calls)
    return {
        "pool": label,
        "workers_peak": dictionary.pool.max_busy,
        "preallocation": dictionary.pool.preallocation_cost,
        "queued_starts": dictionary.pool.queued_starts,
        "mean_response": round(summary.mean, 1),
        "p95_response": summary.p95,
        "elapsed": kernel.clock.now,
    }


def run_experiment() -> list[dict]:
    return [
        drive(PoolConfig("dynamic", lightweight=False), "dynamic(heavy)"),
        drive(PoolConfig("dynamic", lightweight=True), "dynamic(lwp)"),
        drive(PoolConfig("per-slot"), "per-slot N=16"),
        drive(PoolConfig("shared", size=8), "shared M=8"),
        drive(PoolConfig("shared", size=4), "shared M=4"),
        drive(PoolConfig("shared", size=2), "shared M=2"),
    ]


def test_e6_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E6 pool strategies: {REQUESTS} bursty requests, "
            f"process creation = 300 ticks",
            rows,
            note="per-slot/shared preallocate (cost charged up front)",
        )
    by_label = {r["pool"]: r for r in rows}
    # Dynamic heavy creation inflates latency vs preallocated slots.
    assert (
        by_label["per-slot N=16"]["mean_response"]
        < by_label["dynamic(heavy)"]["mean_response"]
    )
    # Shared pools bound the worker population...
    assert by_label["shared M=4"]["workers_peak"] <= 4
    assert by_label["shared M=2"]["workers_peak"] <= 2
    # ...at the price of queued starts and growing latency as M shrinks.
    assert by_label["shared M=2"]["queued_starts"] > 0
    assert (
        by_label["shared M=2"]["p95_response"]
        >= by_label["shared M=8"]["p95_response"]
    )


@pytest.mark.parametrize(
    "mode,size", [("dynamic", None), ("per-slot", None), ("shared", 4)]
)
def test_e6_speed(benchmark, mode, size):
    pool = PoolConfig(mode, size=size, lightweight=(mode != "dynamic"))
    benchmark(drive, pool, mode)


if __name__ == "__main__":
    print_table("E6", run_experiment())
