"""E2 (§2.5.1): readers-writers — concurrency vs ReadMax, fairness.

Claims reproduced: up to ReadMax readers run simultaneously (throughput
rises with ReadMax until reader parallelism is exhausted); neither class
starves (bounded maximum wait) thanks to the WriterLast turn-taking.
Also compares against the monitor baseline.
"""

from __future__ import annotations

import pytest

from repro.baselines import MonitorReadersWriters
from repro.core.monitoring import response_times
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import Database

from harness import print_table

READERS = 24
WRITERS = 6
READ_WORK = 40
WRITE_WORK = 60


def drive_manager(read_max: int) -> dict:
    kernel = Kernel(costs=FREE)
    db = Database(
        kernel,
        read_max=read_max,
        read_work=READ_WORK,
        write_work=WRITE_WORK,
        initial={"k": 0},
        record_calls=True,
    )

    def reader(i):
        yield Delay(i % 5)
        yield db.read("k")

    def writer(i):
        yield Delay(i % 7)
        yield db.write("k", i)

    def main():
        yield Par(
            *[lambda i=i: reader(i) for i in range(READERS)],
            *[lambda i=i: writer(i) for i in range(WRITERS)],
        )

    kernel.run_process(main)
    calls = db.completed_calls()
    reads = [c for c in calls if c.entry == "read"]
    writes = [c for c in calls if c.entry == "write"]
    return {
        "read_max": read_max,
        "virtual_time": kernel.clock.now,
        "peak_readers": db.max_concurrent_readers,
        "violations": db.exclusion_violations,
        "read_p95_wait": response_times(reads).p95,
        "write_p95_wait": response_times(writes).p95,
    }


def drive_monitor_baseline(read_max: int) -> dict:
    kernel = Kernel(costs=FREE)
    db = MonitorReadersWriters(
        kernel, read_max=read_max, read_work=READ_WORK, write_work=WRITE_WORK
    )

    def reader(i):
        yield Delay(i % 5)
        yield from db.read("k")

    def writer(i):
        yield Delay(i % 7)
        yield from db.write("k", i)

    def main():
        yield Par(
            *[lambda i=i: reader(i) for i in range(READERS)],
            *[lambda i=i: writer(i) for i in range(WRITERS)],
        )

    kernel.run_process(main)
    return {
        "read_max": read_max,
        "virtual_time": kernel.clock.now,
        "peak_readers": db.max_concurrent_readers,
        "violations": db.exclusion_violations,
    }


def run_experiment() -> tuple[list[dict], list[dict]]:
    manager_rows = [drive_manager(n) for n in (1, 2, 4, 8, 16)]
    monitor_rows = [drive_monitor_baseline(n) for n in (1, 4, 16)]
    return manager_rows, monitor_rows


def test_e2_table(benchmark, capsys):
    manager_rows, monitor_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    with capsys.disabled():
        print_table(
            f"E2 readers-writers (ALPS manager): {READERS} readers / "
            f"{WRITERS} writers, sweep ReadMax",
            manager_rows,
        )
        print_table("E2 monitor baseline", monitor_rows)
    for row in manager_rows:
        assert row["violations"] == 0
        assert row["peak_readers"] <= row["read_max"]
    # More reader parallelism => shorter runs, saturating eventually.
    times = [row["virtual_time"] for row in manager_rows]
    assert times[0] > times[2]  # ReadMax 1 -> 4 improves
    assert times[-1] <= times[0]


def test_e2_starvation_bound(benchmark):
    def run():
        row = drive_manager(4)
        # Starvation freedom: even the p95 writer wait is bounded well
        # below the whole-run duration.
        assert row["write_p95_wait"] < row["virtual_time"]
        return row

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("read_max", (1, 4, 16))
def test_e2_manager_speed(benchmark, read_max):
    benchmark(drive_manager, read_max)


if __name__ == "__main__":
    m, b = run_experiment()
    print_table("E2 manager", m)
    print_table("E2 monitor", b)
