"""E9 (§3): guard evaluation over hidden procedure arrays.

Claim reproduced: "a hidden procedure array P[1..N] may have only a small
number of requests attached to it on the average and it is wasteful to
implement a guarded command of the form ((i:1..N) accept P[i] ...) " by
polling every element.  We program the same manager two ways:

* **naive** — the select lists one guard per array element (N guards
  polled on every evaluation, the paper's wasteful translation);
* **quantified** — one guard ranges over the array and the runtime wakes
  the manager only on relevant events (indexed wakeup).

With a per-guard polling charge, the naive manager's cost grows with N
while the quantified one stays flat — the measured form of §3's
implementation advice.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.kernel import CostModel, Kernel, Par, Select

from harness import print_table

CALLS = 32
POLL_COSTS = CostModel(guard_poll=1)


def build_service(array_size: int, naive: bool):
    class Service(AlpsObject):
        def setup(self):
            self.array_size = array_size

        @entry(returns=1, array="array_size")
        def op(self, n):
            return n

        @manager_process(intercepts=["op"])
        def mgr(self):
            while True:
                if naive:
                    guards = [
                        AcceptGuard(self, "op", slot=i)
                        for i in range(self.array_size)
                    ] + [
                        AwaitGuard(self, "op", slot=i)
                        for i in range(self.array_size)
                    ]
                    result = yield Select(*guards)
                else:
                    result = yield Select(
                        AcceptGuard(self, "op"),
                        AwaitGuard(self, "op"),
                    )
                if isinstance(result.guard, AcceptGuard):
                    yield Start(result.value)
                else:
                    yield Finish(result.value)

    return Service


def drive(array_size: int, naive: bool) -> dict:
    kernel = Kernel(costs=POLL_COSTS)
    service = build_service(array_size, naive)(kernel)

    def caller(n):
        return (yield service.op(n))

    def main():
        return (yield Par(*[lambda i=i: caller(i) for i in range(CALLS)]))

    results = kernel.run_process(main)
    assert sorted(results) == list(range(CALLS))
    return {
        "strategy": "naive per-slot" if naive else "quantified",
        "array_N": array_size,
        "guard_polls": kernel.stats.guard_polls,
        "polls_per_call": round(kernel.stats.guard_polls / CALLS, 1),
        "virtual_time": kernel.clock.now,
    }


def run_experiment() -> list[dict]:
    rows = []
    for array_size in (4, 16, 64, 128):
        rows.append(drive(array_size, naive=True))
        rows.append(drive(array_size, naive=False))
    return rows


def test_e9_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E9 guard polling over P[1..N]: {CALLS} calls, poll cost = 1 tick",
            rows,
        )
    naive = {r["array_N"]: r for r in rows if r["strategy"] == "naive per-slot"}
    quantified = {r["array_N"]: r for r in rows if r["strategy"] == "quantified"}
    # Naive polling scales with N...
    assert naive[128]["guard_polls"] > 4 * naive[4]["guard_polls"]
    # ...while the quantified guard's poll count is essentially flat.
    assert quantified[128]["guard_polls"] < 2 * quantified[4]["guard_polls"]
    # And at large N the naive manager pays for it in virtual time.
    assert naive[128]["virtual_time"] > quantified[128]["virtual_time"]


@pytest.mark.parametrize("naive", (True, False))
def test_e9_speed(benchmark, naive):
    benchmark(drive, 64, naive)


if __name__ == "__main__":
    print_table("E9", run_experiment())
