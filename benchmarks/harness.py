"""Shared helpers for the benchmark suite.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md §4.
The measured quantity is *virtual-time behaviour* (throughput, latency,
process counts — the numbers the paper argues about); pytest-benchmark
additionally times the simulation itself so regressions in the kernel
show up.

Every experiment prints its table via :func:`print_table`, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the full set of
results, and each module exposes ``run_experiment()`` so the tables can
also be produced without pytest.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Any, Iterable, Sequence


def print_table(title: str, rows: Sequence[dict], note: str = "") -> None:
    """Render rows (list of dicts with identical keys) as an aligned table."""
    print(f"\n## {title}")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0])
    widths = {
        key: max(len(str(key)), *(len(_fmt(row[key])) for row in rows))
        for key in keys
    }
    header = "  ".join(str(key).rjust(widths[key]) for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row[key]).rjust(widths[key]) for key in keys))
    if note:
        print(f"({note})")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def write_results(
    experiment: str,
    rows: Sequence[dict],
    seed: int | None = None,
    note: str = "",
    out_dir: str | None = None,
) -> str:
    """Persist an experiment's table as ``BENCH_<EXPERIMENT>.json``.

    The file records everything needed to reproduce and compare runs:
    the experiment id, the metric rows exactly as printed, the seed the
    workload used, and the git revision that produced them.  Returns the
    path written.  ``REPRO_BENCH_DIR`` overrides the output directory
    (default: current working directory).
    """
    out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR") or "."
    path = os.path.join(out_dir, f"BENCH_{experiment.upper()}.json")
    payload = {
        "experiment": experiment.upper(),
        "seed": seed,
        "git_rev": _git_rev(),
        "note": note,
        "rows": list(rows),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
    return path


def artifact_path(filename: str, out_dir: str | None = None) -> str:
    """Where a bench artifact lands (honours ``REPRO_BENCH_DIR``)."""
    out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR") or "."
    return os.path.join(out_dir, filename)


def metrics_snapshot(kernel) -> dict[str, Any]:
    """One merged metrics dict: kernel counters plus the typed registry.

    ``custom`` keys mirrored by a typed counter (declared with
    ``legacy=``) are suppressed in favour of the dotted registry name,
    so every number appears exactly once.
    """
    merged = kernel.stats.snapshot()
    custom = merged.pop("custom", {})
    mirrored = kernel.metrics.legacy_keys
    for key, value in custom.items():
        if key not in mirrored:
            merged[key] = value
    merged.update(kernel.metrics.snapshot())
    return merged


def attach_chrome_trace(kernel, experiment: str, out_dir: str | None = None) -> str:
    """Attach a Chrome ``trace_event`` sink writing ``TRACE_<EXPERIMENT>.json``.

    The file lands next to the ``BENCH_*.json`` results (same
    ``REPRO_BENCH_DIR`` override) and opens directly in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``.  Attaching the
    sink enables span recording; call ``kernel.obs.close()`` after the
    run to flush the file.  Returns the path that will be written.
    """
    from repro.obs import ChromeTraceSink

    out_dir = out_dir or os.environ.get("REPRO_BENCH_DIR") or "."
    path = os.path.join(out_dir, f"TRACE_{experiment.upper()}.json")
    kernel.obs.add_sink(ChromeTraceSink(path))
    return path


def _git_rev() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
