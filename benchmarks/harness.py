"""Shared helpers for the benchmark suite.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md §4.
The measured quantity is *virtual-time behaviour* (throughput, latency,
process counts — the numbers the paper argues about); pytest-benchmark
additionally times the simulation itself so regressions in the kernel
show up.

Every experiment prints its table via :func:`print_table`, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the full set of
results, and each module exposes ``run_experiment()`` so the tables can
also be produced without pytest.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def print_table(title: str, rows: Sequence[dict], note: str = "") -> None:
    """Render rows (list of dicts with identical keys) as an aligned table."""
    print(f"\n## {title}")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0])
    widths = {
        key: max(len(str(key)), *(len(_fmt(row[key])) for row in rows))
        for key in keys
    }
    header = "  ".join(str(key).rjust(widths[key]) for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row[key]).rjust(widths[key]) for key in keys))
    if note:
        print(f"({note})")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
