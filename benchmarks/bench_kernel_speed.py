"""ESPEED: raw kernel speed — simulated events per wall-clock second.

Every other benchmark in this directory measures *virtual-time*
quantities, which the regression gate can hold to tight tolerances
because they are deterministic.  This one guards the orthogonal axis:
how fast the simulator itself executes, so a refactor that quietly makes
the event loop 3x slower is caught even though every virtual metric is
byte-identical.

The workload exercises the hot path end to end — spawns, channel
sends/receives (blocking both ways: bounded capacity throttles
producers, empty channels park consumers), Charge syscalls through the
2-CPU SMP scheduler, and the resulting context switches.  The virtual
outcome (``events``) is deterministic and gated at tolerance 0; the
wall-clock rate (``events_per_sec``) is best-of-N to shave scheduler
noise and gated with a wide tolerance, downward only.
"""

from __future__ import annotations

import time

from repro.channels import Channel, Receive, Send
from repro.kernel import Charge, Kernel

from harness import print_table, write_results

MESSAGES = 400
PAIRS = 4
ROUNDS = 3


def simulate() -> Kernel:
    kernel = Kernel(num_cpus=2)
    chan = Channel(capacity=8)

    def producer():
        for i in range(MESSAGES):
            yield Charge(2)
            yield Send(chan, i)

    def consumer():
        for _ in range(MESSAGES):
            yield Receive(chan)
            yield Charge(3)

    for _ in range(PAIRS):
        kernel.spawn(producer)
        kernel.spawn(consumer)
    kernel.run()
    return kernel


def run_experiment() -> list[dict]:
    best = float("inf")
    kernel = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        kernel = simulate()
        best = min(best, time.perf_counter() - start)
    events = kernel.stats.resumptions
    return [
        {
            "workload": "chan-pingpong-smp2",
            "events": events,
            "events_per_sec": int(events / best),
            "best_wall_s": round(best, 4),
            "virtual_elapsed": kernel.clock.now,
        }
    ]


def test_espeed(capsys):
    # Self-timed (best-of-ROUNDS inside run_experiment) rather than
    # pytest-benchmark-timed: the gate reads the recorded JSON, so the
    # number must be computed the same way with and without --benchmark-
    # disable.
    rows = run_experiment()
    with capsys.disabled():
        print_table(
            f"ESPEED kernel microbenchmark: {PAIRS} producer/consumer "
            f"pairs x {MESSAGES} messages, 2 CPUs",
            rows,
            note=f"best of {ROUNDS} runs; events = process resumptions",
        )
    write_results(
        "ESPEED",
        rows,
        note="wall-clock events/sec; events gated exactly, rate loosely",
    )
    row = rows[0]
    assert row["events"] > 0
    assert row["events_per_sec"] > 0


if __name__ == "__main__":
    print_table("ESPEED", run_experiment())
