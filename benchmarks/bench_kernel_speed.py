"""ESPEED: raw kernel speed — simulated events per wall-clock second.

Every other benchmark in this directory measures *virtual-time*
quantities, which the regression gate can hold to tight tolerances
because they are deterministic.  This one guards the orthogonal axis:
how fast the simulator itself executes, so a refactor that quietly makes
the event loop 3x slower is caught even though every virtual metric is
byte-identical.

The workload exercises the hot path end to end — spawns, channel
sends/receives (blocking both ways: bounded capacity throttles
producers, empty channels park consumers), Charge syscalls through the
2-CPU SMP scheduler, and the resulting context switches.  The virtual
outcome (``events``) is deterministic and gated at tolerance 0; the
wall-clock rate (``events_per_sec``) is best-of-N to shave scheduler
noise and gated with a wide tolerance, downward only.

A second row runs the identical workload with the **live telemetry
plane** aggregating (clock observers rolling a latency window, a rate,
and a burn-rate monitor fed from the consumer loop).  Its ``events``
count is gated at tolerance 0 — the CI-enforced proof that the plane is
schedule-neutral — and ``live_overhead_x`` records the wall-clock
slowdown factor (live rate vs. base rate, 1.0 = free), gated upward in
BENCH_HISTORY so the observer path cannot quietly grow a hot-loop cost.
"""

from __future__ import annotations

import time

from repro.channels import Channel, Receive, Send
from repro.kernel import Charge, Kernel

from harness import print_table, write_results

MESSAGES = 400
PAIRS = 4
ROUNDS = 3


def simulate(live: bool = False) -> Kernel:
    kernel = Kernel(num_cpus=2)
    chan = Channel(capacity=8)
    plane = None
    if live:
        plane = kernel.obs.live
        lat = plane.histogram("espeed.latency", window=1000)
        rate = plane.rate("espeed.rate", window=1000)
        slo = plane.monitor("espeed.slo", objective=0.99)
        plane.metric_rate("sends")

    def producer():
        for i in range(MESSAGES):
            yield Charge(2)
            yield Send(chan, i)

    def consumer():
        for _ in range(MESSAGES):
            yield Receive(chan)
            yield Charge(3)

    def consumer_live():
        for i in range(MESSAGES):
            yield Receive(chan)
            yield Charge(3)
            # Pure Python aggregation, no syscalls: the schedule (and so
            # ``events``) must stay identical to the base workload.
            lat.observe(i % 17)
            rate.mark()
            slo.record(True)

    for _ in range(PAIRS):
        kernel.spawn(producer)
        kernel.spawn(consumer_live if live else consumer)
    kernel.run()
    return kernel


def _best_of(rounds: int, live: bool) -> tuple[float, Kernel]:
    best = float("inf")
    kernel = None
    for _ in range(rounds):
        start = time.perf_counter()
        kernel = simulate(live=live)
        best = min(best, time.perf_counter() - start)
    return best, kernel


def run_experiment() -> list[dict]:
    base_wall, base_kernel = _best_of(ROUNDS, live=False)
    live_wall, live_kernel = _best_of(ROUNDS, live=True)
    base_events = base_kernel.stats.resumptions
    live_events = live_kernel.stats.resumptions
    base_rate = base_events / base_wall
    live_rate = live_events / live_wall
    return [
        {
            "workload": "chan-pingpong-smp2",
            "events": base_events,
            "events_per_sec": int(base_rate),
            "best_wall_s": round(base_wall, 4),
            "virtual_elapsed": base_kernel.clock.now,
        },
        {
            "workload": "chan-pingpong-smp2-live",
            "events": live_events,
            "events_per_sec": int(live_rate),
            "best_wall_s": round(live_wall, 4),
            "virtual_elapsed": live_kernel.clock.now,
            # Slowdown factor of the live plane: 1.0 = free, 2.0 = the
            # plane doubled the cost of simulating one event.
            "live_overhead_x": round(base_rate / live_rate, 3),
        },
    ]


def test_espeed(capsys):
    # Self-timed (best-of-ROUNDS inside run_experiment) rather than
    # pytest-benchmark-timed: the gate reads the recorded JSON, so the
    # number must be computed the same way with and without --benchmark-
    # disable.
    rows = run_experiment()
    with capsys.disabled():
        print_table(
            f"ESPEED kernel microbenchmark: {PAIRS} producer/consumer "
            f"pairs x {MESSAGES} messages, 2 CPUs",
            rows,
            note=f"best of {ROUNDS} runs; events = process resumptions; "
            f"-live row aggregates in the live telemetry plane",
        )
    write_results(
        "ESPEED",
        rows,
        note="wall-clock events/sec; events gated exactly, rate loosely; "
        "live_overhead_x = base rate / live rate",
    )
    base, live = rows
    assert base["events"] > 0
    assert base["events_per_sec"] > 0
    # Schedule neutrality, enforced here and by the tolerance-0 gate on
    # the recorded JSON: aggregating must not change the event count or
    # the virtual clock.
    assert live["events"] == base["events"]
    assert live["virtual_elapsed"] == base["virtual_elapsed"]
    assert live["live_overhead_x"] > 0


if __name__ == "__main__":
    print_table("ESPEED", run_experiment())
