"""E8 (§2.3): nested calls — asynchronous start avoids the deadlock.

Claim reproduced: the X.P → Y.Q → X.R call chain deadlocks under
Ada-style rendezvous (the server is busy inside P and cannot accept R)
but completes under ALPS managers.  We also measure the cost of the
manager's extra hops on a nested chain of configurable depth.
"""

from __future__ import annotations


from repro.baselines import AdaTask
from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.errors import DeadlockError
from repro.kernel import Kernel, Par, Select

from harness import print_table


def build_alps_pair(kernel):
    holder = {}

    class X(AlpsObject):
        @entry(returns=1, array=4)
        def p(self):
            value = yield holder["y"].q()
            return value + 1

        @entry(returns=1, array=4)
        def r(self):
            return 0

        @manager_process(intercepts=["p", "r"])
        def mgr(self):
            while True:
                result = yield Select(
                    AcceptGuard(self, "p"),
                    AcceptGuard(self, "r"),
                    AwaitGuard(self, "p"),
                    AwaitGuard(self, "r"),
                )
                if isinstance(result.guard, AcceptGuard):
                    yield Start(result.value)
                else:
                    yield Finish(result.value)

    class Y(AlpsObject):
        @entry(returns=1, array=4)
        def q(self):
            value = yield holder["x"].r()
            return value + 1

        @manager_process(intercepts=["q"])
        def mgr(self):
            while True:
                result = yield Select(
                    AcceptGuard(self, "q"), AwaitGuard(self, "q")
                )
                if isinstance(result.guard, AcceptGuard):
                    yield Start(result.value)
                else:
                    yield Finish(result.value)

    holder["x"] = X(kernel, name="X")
    holder["y"] = Y(kernel, name="Y")
    return holder


def drive_alps(chains: int) -> dict:
    kernel = Kernel()
    holder = build_alps_pair(kernel)

    def client():
        return (yield holder["x"].p())

    def main():
        return (yield Par(*[lambda: client() for _ in range(chains)]))

    results = kernel.run_process(main)
    assert results == [2] * chains
    return {
        "mechanism": "ALPS managers",
        "chains": chains,
        "outcome": "completed",
        "virtual_time": kernel.clock.now,
        "switches": kernel.stats.context_switches,
    }


def drive_rendezvous(chains: int) -> dict:
    kernel = Kernel()
    tasks = {}

    def server_x(x):
        while True:
            request = yield x.accept("p", "r")
            if request.entry == "p":
                value = yield from tasks["y"].call("q")
                yield x.reply(request, value + 1)
            else:
                yield x.reply(request, 0)

    def server_y(y):
        while True:
            request = yield y.accept("q")
            value = yield from tasks["x"].call("r")
            yield y.reply(request, value + 1)

    tasks["x"] = AdaTask(kernel, ["p", "r"], server_x, name="X")
    tasks["y"] = AdaTask(kernel, ["q"], server_y, name="Y")

    def client():
        return (yield from tasks["x"].call("p"))

    for _ in range(chains):
        kernel.spawn(client)
    try:
        kernel.run()
        outcome = "completed (unexpected)"
    except DeadlockError:
        outcome = "DEADLOCK"
    return {
        "mechanism": "Ada rendezvous",
        "chains": chains,
        "outcome": outcome,
        "virtual_time": kernel.clock.now,
        "switches": kernel.stats.context_switches,
    }


def run_experiment() -> list[dict]:
    rows = []
    for chains in (1, 4):
        rows.append(drive_alps(chains))
        rows.append(drive_rendezvous(chains))
    return rows


def test_e8_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E8 nested calls (X.P -> Y.Q -> X.R)",
            rows,
            note="the §2.3 comparison: async start vs in-task service",
        )
    for row in rows:
        if row["mechanism"] == "ALPS managers":
            assert row["outcome"] == "completed"
        else:
            assert row["outcome"] == "DEADLOCK"


def test_e8_alps_speed(benchmark):
    benchmark(drive_alps, 4)


if __name__ == "__main__":
    print_table("E8", run_experiment())
