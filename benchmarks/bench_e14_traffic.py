"""E14: open-loop traffic — goodput curves, knees, and tail latency.

The closed-loop experiments (E1–E13) let slow objects throttle their own
load: a blocked caller issues nothing.  E14 drives three stdlib objects
with the open-loop :class:`~repro.workloads.TrafficEngine` — a million
logical callers multiplexed over four engine processes — and sweeps the
offered load across the object's capacity, for three arrival shapes:

* ``uniform`` — fixed-rate arrivals (the kindest possible shape);
* ``poisson`` — memoryless arrivals at the same mean rate;
* ``bursty``  — the same mean rate delivered in back-to-back bursts.

Every object runs with a ``queue_cap``, so past saturation the manager's
load-shedding arm (``#P > cap``, §2.5.1) converts overload into fast
:class:`~repro.errors.AdmissionError` rejections instead of unbounded
queueing.  Per cell: exact outcome accounting (``issued == ok + shed +
timeout + dropped + error``), p50/p99/p999 virtual latency of the served
requests, goodput per kilotick, and whether this cell is the **knee** of
its (object, arrival) curve — the sweep step where goodput stops
tracking offered load (see EXPERIMENTS.md E14 for interpretation).

The engine's offered load is provably identical across cells that share
an arrival process: the request schedule is fixed before the kernel
runs, so mechanism and admission policy can only change *outcomes*,
never *arrivals*.

Every cell also runs with the **live telemetry plane** attached
(:mod:`repro.obs.live`): a latency window, goodput/load rates, an SLO
burn-rate monitor, and a heavy-hitter sketch of the touched keys.  The
plane is schedule-neutral by contract — asserted below by re-running a
cell without it — so the table gains ``alerts`` (burn-rate transitions
fired) and ``hot_key`` (the dominant guaranteed-share key, KV cells)
columns at zero perturbation.  The traced re-run streams dashboard
snapshots to ``LIVE_E14.jsonl`` and renders ``DASHBOARD_E14.txt``; CI
replays the JSONL through ``python -m repro.obs.live`` and ``cmp``s the
two dashboards byte for byte.
"""

from __future__ import annotations

from repro.kernel import Kernel
from repro.obs import JsonlSink
from repro.stdlib import BoundedBuffer, GatedKVStore, Spooler
from repro.workloads import (
    Bursty,
    Poisson,
    TrafficEngine,
    Uniform,
    Zipf,
    find_knee,
    summarize,
    watch_traffic,
)

from harness import artifact_path, attach_chrome_trace, print_table, write_results

SEED = 11
COUNT = 240          # requests per cell
CALLERS = 1_000_000  # logical caller ID space
ENGINES = 4
CLIENTS = 48         # per-engine in-flight bound
#: Mean inter-arrival gaps swept, fastest last (offered load rises).
GAPS = (24, 12, 6, 3, 1)
OBJECTS = ("buffer", "spooler", "kv")
ARRIVALS = ("uniform", "poisson", "bursty")

#: Zipf-skewed key popularity for the KV cells, materialized once so the
#: key sequence is a pure function of the request index (scheduling
#: order can never perturb which request touches which key).
KV_KEYS = list(Zipf([f"k{i}" for i in range(32)], s=1.2, seed=SEED).stream(COUNT))


def make_arrivals(kind: str, gap: int):
    if kind == "uniform":
        return Uniform(gap)
    if kind == "poisson":
        return Poisson(gap, seed=SEED)
    # Bursts of 8 at the same mean rate: quiet period carries the
    # whole burst's worth of gap.
    return Bursty(burst=8, quiet=8 * gap, jitter=gap, seed=SEED)


def make_target(kind: str, kernel: Kernel):
    """(object, request factory) for one cell; capacities sit inside GAPS."""
    if kind == "buffer":
        buf = BoundedBuffer(kernel, name="buf", size=8, work=4, queue_cap=12)

        def request(req):
            if req.index % 2 == 0:
                return buf.deposit(f"m{req.index}")
            return buf.remove()

        return buf, request
    if kind == "spooler":
        spool = Spooler(kernel, name="spool", printers=3, speed=8,
                        job_max=8, queue_cap=12)

        def request(req):
            return spool.print_file(f"job{req.index}")

        return spool, request
    kv = GatedKVStore(kernel, name="kv", read_work=2, write_work=6,
                      request_max=8, queue_cap=16)

    def request(req):
        key = KV_KEYS[req.index]
        if req.index % 3 == 0:
            return kv.put(key, req.index)
        return kv.get(key)

    return kv, request


#: Live-plane SLO config for every cell: 90% of requests served OK,
#: alert at 2x budget burn on both windows, clear below 1x.
LIVE_OBJECTIVE = 0.9
LIVE_FAST = 600
LIVE_SLOW = 3000


def drive(obj_kind: str, arrival_kind: str, gap: int, trace: bool = False,
          live: bool = True) -> dict:
    kernel = Kernel(seed=SEED)
    if trace:
        attach_chrome_trace(kernel, "e14")
    _, request = make_target(obj_kind, kernel)
    engine = TrafficEngine(
        kernel,
        make_arrivals(arrival_kind, gap),
        COUNT,
        request,
        callers=CALLERS,
        engines=ENGINES,
        clients=CLIENTS,
        seed=SEED,
    )
    plane = None
    capture = None
    if live:
        plane = kernel.obs.live
        if trace:
            from repro.obs import MemorySink

            kernel.obs.add_sink(
                JsonlSink(artifact_path("LIVE_E14.jsonl")), forward_trace=False
            )
            # In-memory capture of the same instants: DASHBOARD_E14.txt
            # renders from these dicts, CI re-renders from the JSONL via
            # the CLI and cmp's the two — byte identity across the
            # serialization boundary.
            capture = kernel.obs.add_sink(MemorySink(), forward_trace=False)
            plane.stream_snapshots(every=2)
        watch_traffic(
            plane, engine, objective=LIVE_OBJECTIVE, window=1200,
            fast=LIVE_FAST, slow=LIVE_SLOW,
            key=(lambda o: KV_KEYS[o.request.index]) if obj_kind == "kv"
            else None,
        )
    result = engine.run()
    if trace:
        if plane is not None:
            from repro.obs.live.dashboard import render

            snapshots = [r["detail"] for r in capture.records
                         if r.get("kind") == "live.snapshot"]
            with open(artifact_path("DASHBOARD_E14.txt"), "w",
                      encoding="utf-8") as fh:
                fh.write(render(snapshots[-1]))
            plane.write_alert_log(artifact_path("ALERTS_E14.jsonl"))
        kernel.obs.close()
    report = summarize(result)
    row = {"object": obj_kind, "arrival": arrival_kind, "mean_gap": gap}
    row.update(report.to_row())
    if plane is not None:
        monitor = plane.monitors["traffic.traffic.slo"]
        row["alerts"] = sum(1 for e in monitor.events if e.state == "firing")
        hot = plane.hot_keys("traffic.traffic.callers").candidates(0.15)
        row["hot_key"] = hot[0] if (hot and obj_kind == "kv") else ""
    return row


def run_experiment() -> list[dict]:
    rows = []
    for obj_kind in OBJECTS:
        for arrival_kind in ARRIVALS:
            curve = [drive(obj_kind, arrival_kind, gap) for gap in GAPS]
            knee = find_knee(
                [(r["offered_per_ktick"], r["goodput_per_ktick"]) for r in curve]
            )
            for i, row in enumerate(curve):
                row["knee"] = i == knee
            rows.extend(curve)
    return rows


def cell_row(rows: list[dict], obj_kind: str, arrival_kind: str, gap: int) -> dict:
    return next(
        r for r in rows
        if r["object"] == obj_kind
        and r["arrival"] == arrival_kind
        and r["mean_gap"] == gap
    )


def test_e14_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E14 open-loop traffic ({COUNT} requests/cell, "
            f"{CALLERS} callers over {ENGINES} engines)",
            rows,
            note="same engine seed per cell; only object and arrivals vary",
        )
    write_results(
        "e14", rows, seed=SEED,
        note=f"objects {OBJECTS}, arrivals {ARRIVALS}, gaps {GAPS}",
    )

    # Exact accounting everywhere (engine.run() already asserted
    # conservation; the rows must also show zero unexpected errors).
    assert all(r["error"] == 0 for r in rows)
    assert all(r["timeout"] == 0 for r in rows)
    assert all(
        r["ok"] + r["shed"] + r["dropped"] == r["issued"] for r in rows
    )

    # Every cell served something, so the percentiles are real latencies.
    assert all(r["ok"] > 0 and r["p99"] is not None for r in rows)

    for obj_kind in OBJECTS:
        for arrival_kind in ARRIVALS:
            curve = [cell_row(rows, obj_kind, arrival_kind, g) for g in GAPS]
            # The sweep crosses the knee: the lightest load is (near-)
            # fully served, the heaviest is visibly saturated.
            assert curve[0]["goodput_fraction"] >= 0.95, curve[0]
            assert curve[-1]["goodput_fraction"] < 0.80, curve[-1]
            # Past saturation the gap is *accounted*: admission control
            # (shed) or the engine's client bound (dropped), never silence.
            assert curve[-1]["shed"] + curve[-1]["dropped"] > 0
            # Exactly one knee is marked per curve.
            assert sum(1 for r in curve if r["knee"]) == 1

    # Observation is schedule-neutral for the engine: re-running one cell
    # with the span recorder, Chrome sink, and live-plane snapshot stream
    # attached (TRACE_E14.json, LIVE_E14.jsonl, DASHBOARD_E14.txt)
    # reproduces the measured row exactly — no virtual timestamp moves.
    probe = dict(cell_row(rows, "kv", "poisson", 3))
    probe.pop("knee")
    traced = drive("kv", "poisson", 3, trace=True)
    assert traced == probe, "span recording changed an E14 cell"

    # And the live plane itself is schedule-neutral: the same cell with
    # no plane at all yields identical traffic numbers (the live columns
    # are the only difference).
    bare = drive("kv", "poisson", 3, live=False)
    assert bare == {
        k: v for k, v in probe.items() if k not in ("alerts", "hot_key")
    }, "live telemetry plane changed an E14 cell"

    # The burn-rate monitors saw the overload the knees report: at least
    # one saturated KV cell fired an alert, and the Zipf skew surfaced a
    # guaranteed-hot key for the resharder.
    kv_rows = [r for r in rows if r["object"] == "kv"]
    assert any(r["alerts"] > 0 for r in kv_rows)
    assert any(r["hot_key"] for r in kv_rows)


def test_e14_traffic_speed(benchmark):
    benchmark.pedantic(drive, args=("buffer", "poisson", 3),
                       rounds=1, iterations=1)


if __name__ == "__main__":
    print_table("E14", run_experiment())
