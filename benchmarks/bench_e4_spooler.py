"""E4 (§2.8.1): printer spooler — utilization vs pool size, hidden results.

Claims reproduced: the spooler keeps all printers busy under load
(utilization rises to saturation as jobs arrive faster); hidden
parameters/results let the manager run with zero allocation bookkeeping
(asserted structurally: the manager holds only a free list).
"""

from __future__ import annotations

import pytest

from repro.core.monitoring import max_overlap
from repro.kernel import Kernel
from repro.stdlib import Spooler
from repro.workloads import Uniform, open_loop

from harness import print_table

JOBS = 40
PAGES_TICKS = 4  # speed: ticks per page


def drive(printers: int, gap: int) -> dict:
    from repro.kernel.costs import FREE

    # Free syscall costs: utilization then measures printing alone.
    kernel = Kernel(costs=FREE)
    spooler = Spooler(kernel, printers=printers, speed=PAGES_TICKS, job_max=64)
    done = []

    def submit(i):
        yield spooler.print_file(f"doc{i:02}" + "x" * (8 + 8 * (i % 4)))
        done.append(kernel.clock.now)

    kernel.spawn(open_loop(Uniform(gap), JOBS, submit))
    kernel.run()

    elapsed = kernel.clock.now
    busy = sum(
        end - start
        for intervals in spooler.busy_intervals.values()
        for start, end in intervals
    )
    intervals = [iv for ivs in spooler.busy_intervals.values() for iv in ivs]
    return {
        "printers": printers,
        "arrival_gap": gap,
        "elapsed": elapsed,
        "utilization_pct": round(100 * busy / (elapsed * printers), 1),
        "peak_parallel": max_overlap(intervals),
        "jobs_done": len(done),
    }


def run_experiment() -> list[dict]:
    rows = []
    for printers in (1, 2, 4, 8):
        for gap in (5, 40):
            rows.append(drive(printers, gap))
    return rows


def test_e4_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E4 printer spooler: {JOBS} jobs, sweep printers x arrival gap",
            rows,
            note="gap=5 overload, gap=40 light load",
        )
    for row in rows:
        assert row["jobs_done"] == JOBS
        assert row["peak_parallel"] <= row["printers"]
    # Under overload, more printers => shorter makespan.
    overload = {r["printers"]: r for r in rows if r["arrival_gap"] == 5}
    assert overload[8]["elapsed"] < overload[1]["elapsed"]
    # Under overload a single printer saturates.
    assert overload[1]["utilization_pct"] > 80


def test_e4_manager_holds_no_allocation_table(benchmark):
    def run():
        kernel = Kernel()
        spooler = Spooler(kernel, printers=3, speed=2, job_max=16)

        def submit(i):
            yield spooler.print_file(f"f{i}" + "y" * 24)

        kernel.spawn(open_loop(Uniform(3), 12, submit))
        kernel.run()
        # Structural check of the §2.8.1 claim: every printer returned to
        # the free pool purely via hidden results.
        jobs = sum(len(p.jobs) for p in spooler.printer_pool)
        assert jobs == 12
        return jobs

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("printers", (1, 4))
def test_e4_speed(benchmark, printers):
    benchmark(drive, printers, 5)


if __name__ == "__main__":
    print_table("E4", run_experiment())
