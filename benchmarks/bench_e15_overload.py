"""E15: overload + crash — retry storms vs the request-robustness stack.

The scenario every production system eventually meets: an object running
at 1.5x its knee capacity suffers a mid-run crash and heals.  Two client
configurations face byte-identical offered load (same engine seed, the
schedule is fixed before the kernel runs):

* ``storm`` — the pre-PR-7 defaults: unbounded server queue, per-attempt
  timeouts, eager fixed-backoff retries with **no aggregate bound**.
  Every timeout re-offers the request, so the outage multiplies load by
  the attempt count; after the heal the queue is a wall of work that
  expires before it can be served, and goodput never recovers;
* ``guarded`` — the full robustness stack: queue cap + deadline-sweep +
  predicted-wait shedding on the server (``#P`` admission arms), an
  end-to-end request deadline anchored at the scheduled arrival, a
  shared :class:`~repro.faults.RetryBudget`, and a
  :class:`~repro.faults.CircuitBreaker` that converts the outage into
  fast local refusals and probes its way back after the heal.

Reported per phase (pre-crash / outage / post-heal): goodput per
kilotick and its fraction of the calm knee.  The claims checked:

* the storm config's post-heal goodput stays below **50%** of the knee —
  congestion collapse persists after the fault clears;
* the guarded config recovers to at least **80%** of the knee;
* conservation holds exactly in both (every request and every wire
  attempt accounted), no acknowledged write is lost, and the breaker's
  transition log is replay-identical across runs.
"""

from __future__ import annotations

from repro.faults import (
    CircuitBreaker,
    FaultPlan,
    FixedBackoff,
    RetryBudget,
    install,
)
from repro.kernel import Kernel
from repro.net import ring
from repro.stdlib import GatedKVStore
from repro.workloads import TrafficEngine, Uniform, find_knee, watch_traffic

from harness import attach_chrome_trace, print_table, write_results

SEED = 15
COUNT = 400          # requests per run
ENGINES = 4
CLIENTS = 64         # per-engine in-flight bound (generous: drops are rare)
WORK = 20            # ticks per put body: body >> manager overhead, so a
                     # reject (~2 manager ticks) costs ~10% of a serve and
                     # shedding excess load does not itself eat capacity
TIMEOUT = 150        # per-attempt (per-hop) timeout
DEADLINE = 300       # end-to-end request deadline (guarded config only)
QUEUE_CAP = 4        # server #P cap: cap x per-call time (~26) < TIMEOUT,
                     # so every *admitted* attempt finishes inside its
                     # per-hop timeout instead of dying in the queue
OUTAGE = 200         # crash -> node restart, in ticks
DETECTION = 10       # crash detection delay
SETTLE = 100         # ticks after heal before the recovery phase is judged
#: Calm sweep for the knee (no faults, guarded config), fastest last.
GAPS = (48, 36, 30, 26, 22, 17, 13)
#: Same eager policy for both configs: the *guards* differ, not the zeal.
POLICY = FixedBackoff(delay=20, max_attempts=6)
#: Live-plane SLO on the crash-and-heal rows: 90% of requests ok, alert
#: at 2x budget burn on a fast (400 tick) and slow (2000 tick) window.
LIVE_OBJECTIVE = 0.9
LIVE_FAST = 400
LIVE_SLOW = 2000


def make_engine(config: str, kernel, gap: int):
    """(engine, store) for one run; both configs share the offered load."""
    guarded = config == "guarded"
    net = ring(kernel, 2)
    store = net.node("n1").place(
        GatedKVStore(
            kernel,
            name="kv",
            write_work=WORK,
            request_max=1,  # serial bodies: the service-time EWMA is honest
            queue_cap=QUEUE_CAP if guarded else None,
        )
    )

    def build(req):
        # Unique key per request: an acked put must be retrievable after
        # the run, so lost acknowledged writes are directly countable.
        return store.put(f"k{req.index}", req.index, timeout=TIMEOUT)

    engine = TrafficEngine(
        kernel,
        Uniform(gap),
        COUNT,
        build,
        engines=ENGINES,
        clients=CLIENTS,
        seed=SEED,
        name="e15",
        deadline=DEADLINE if guarded else None,
        retry_policy=POLICY,
        retry_budget=RetryBudget(capacity=10.0, fill_ratio=0.1) if guarded else None,
        breaker=(
            CircuitBreaker(
                kernel,
                window=200,
                min_calls=10,
                failure_threshold=0.5,
                cooldown=100,
                name="kv-breaker",
            )
            if guarded
            else None
        ),
    )
    return engine, store, net


def phase_goodput(result, start: int, end: int) -> float:
    """OK completions per kilotick inside [start, end)."""
    ok = sum(
        1
        for o in result.outcomes
        if o.status == "ok" and start <= o.finished_at < end
    )
    return ok * 1000 / max(1, end - start)


def lost_acked(result, store) -> int:
    """Acked puts whose key is absent after the run (must be zero)."""
    return sum(
        1
        for o in result.outcomes
        if o.status == "ok" and f"k{o.request.index}" not in store.data
    )


def calm_row(gap: int) -> dict:
    """One calm (fault-free, guarded) sweep cell for the knee curve."""
    kernel = Kernel(seed=SEED)
    engine, store, net = make_engine("guarded", kernel, gap)
    install(kernel, net, FaultPlan(detection_delay=DETECTION))
    result = engine.run()
    span = max(1, COUNT * gap)
    return {
        "config": "calm",
        "mean_gap": gap,
        "offered_per_ktick": round(COUNT * 1000 / span, 1),
        "goodput_per_ktick": round(result.counts["ok"] * 1000 / span, 1),
        "ok": result.counts["ok"],
        "shed": result.counts["shed"],
        "timeout": result.counts["timeout"],
        "dropped": result.counts["dropped"],
        "error": result.counts["error"],
        "attempts": result.attempts,
        "lost_acked": lost_acked(result, store),
        "conservation_violations": 0,  # engine.run() would have raised
    }


def storm_drive(config: str, gap: int, trace: bool = False) -> dict:
    """One crash-and-heal run; returns the row plus raw artifacts."""
    span = COUNT * gap
    crash_at = span // 3
    heal_at = crash_at + OUTAGE

    kernel = Kernel(seed=SEED)
    if trace:
        attach_chrome_trace(kernel, "e15")
    engine, store, net = make_engine(config, kernel, gap)
    # Live burn-rate watch on the crash window: the outage must show up
    # as alert transitions in the deterministic alert log (checked
    # below), at zero schedule perturbation.
    plane = kernel.obs.live
    watch_traffic(
        plane, engine, objective=LIVE_OBJECTIVE,
        fast=LIVE_FAST, slow=LIVE_SLOW,
    )
    install(
        kernel,
        net,
        FaultPlan(detection_delay=DETECTION).crash_node(
            "n1", at=crash_at, restart_at=heal_at
        ),
    )
    # Node restarts do not restart placed objects; the harness heals the
    # store explicitly (its data mapping — stable storage — survives).
    kernel.post(heal_at + 1, store.restart)
    result = engine.run()
    if trace:
        kernel.obs.close()

    violations = 0
    try:
        result.check_conservation()
    except AssertionError:
        violations = 1
    retries_total = sum(o.retries for o in result.outcomes)
    row = {
        "config": config,
        "mean_gap": gap,
        "offered_per_ktick": round(COUNT * 1000 / span, 1),
        "pre_goodput": round(phase_goodput(result, 0, crash_at), 1),
        "outage_goodput": round(phase_goodput(result, crash_at, heal_at), 1),
        "post_goodput": round(
            phase_goodput(result, heal_at + SETTLE, span), 1
        ),
        "ok": result.counts["ok"],
        "shed": result.counts["shed"],
        "timeout": result.counts["timeout"],
        "dropped": result.counts["dropped"],
        "error": result.counts["error"],
        "attempts": result.attempts,
        "retries": retries_total,
        "swept": int(kernel.metrics.value("admission.swept")),
        "deadline_expired": int(kernel.metrics.value("deadline.expired")),
        "breaker_transitions": int(kernel.metrics.value("breaker.transitions")),
        "lost_acked": lost_acked(result, store),
        "conservation_violations": violations,
        "alerts": sum(
            1 for e in plane.monitors["traffic.e15.slo"].events
            if e.state == "firing"
        ),
    }
    transitions = list(engine.breaker.transitions) if engine.breaker else []
    return row, engine.offered_records(), transitions


def run_experiment():
    calm = [calm_row(gap) for gap in GAPS]
    curve = [(r["offered_per_ktick"], r["goodput_per_ktick"]) for r in calm]
    knee = find_knee(curve)
    for i, row in enumerate(calm):
        row["knee"] = i == knee
    knee_goodput = calm[knee]["goodput_per_ktick"]
    knee_gap = calm[knee]["mean_gap"]
    # Offer 1.5x the knee load: two-thirds of the knee's mean gap.
    storm_gap = max(1, round(knee_gap / 1.5))

    storm, storm_offered, _ = storm_drive("storm", storm_gap)
    guarded, guarded_offered, transitions = storm_drive("guarded", storm_gap)
    for row in (storm, guarded):
        row["knee_goodput"] = knee_goodput
        row["post_frac_of_knee"] = round(row["post_goodput"] / knee_goodput, 3)
        row["knee"] = False
    return {
        "calm": calm,
        "storm": storm,
        "guarded": guarded,
        "knee_goodput": knee_goodput,
        "storm_gap": storm_gap,
        "offered": (storm_offered, guarded_offered),
        "transitions": transitions,
    }


def bench_rows(outcome: dict) -> list[dict]:
    """Flatten the experiment outcome into uniform BENCH_E15 rows."""
    raw = [dict(r) for r in outcome["calm"]]
    raw += [dict(outcome[k]) for k in ("storm", "guarded")]
    columns: list[str] = []
    for row in raw:
        for key in row:
            if key not in columns:
                columns.append(key)
    return [{key: row.get(key) for key in columns} for row in raw]


def test_e15_overload(benchmark, capsys):
    outcome = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    storm, guarded = outcome["storm"], outcome["guarded"]
    knee_goodput = outcome["knee_goodput"]
    rows = bench_rows(outcome)
    with capsys.disabled():
        print_table(
            f"E15 overload storm vs robustness stack ({COUNT} puts, "
            f"crash for {OUTAGE} ticks mid-run, 1.5x knee load)",
            [storm, guarded],
            note=(
                f"knee {knee_goodput}/ktick at calm gap; identical offered "
                f"schedule, storm gap {outcome['storm_gap']}"
            ),
        )
    write_results(
        "e15", rows, seed=SEED,
        note=f"gaps {GAPS}, outage {OUTAGE}, timeout {TIMEOUT}, "
             f"deadline {DEADLINE}",
    )

    # The two configs faced literally the same offered load.
    storm_offered, guarded_offered = outcome["offered"]
    assert storm_offered == guarded_offered, "offered schedules diverged"

    # Exact accounting and durability in both configs.
    for row in (storm, guarded):
        assert row["conservation_violations"] == 0, row
        assert row["error"] == 0, row
        assert row["lost_acked"] == 0, row

    # The guarded config was healthy before the crash; the storm config
    # is already degraded by then — at sustained 1.5x knee load an
    # uncapped queue outgrows the per-attempt timeout on its own, so its
    # collapse does not even need the crash.
    assert guarded["pre_goodput"] > 0.5 * knee_goodput, guarded
    assert storm["pre_goodput"] < guarded["pre_goodput"], (storm, guarded)

    # The claim: unbounded retries turn a transient crash into persistent
    # collapse, while budget+deadline+breaker recover past 80% of knee.
    assert storm["post_goodput"] < 0.5 * knee_goodput, storm
    assert guarded["post_goodput"] >= 0.8 * knee_goodput, guarded

    # The live burn-rate monitor saw the outage in both configs: the SLO
    # budget burn crossed threshold on the fast and slow windows and the
    # (deterministic, replay-identical) alert log recorded the firing.
    assert storm["alerts"] >= 1, storm
    assert guarded["alerts"] >= 1, guarded

    # The guarded stack actually exercised its machinery.
    assert guarded["breaker_transitions"] >= 3, guarded  # open, probe, close
    assert guarded["shed"] > 0, guarded
    # ... and unbounded retries amplified the storm's wire load.
    assert storm["attempts"] > guarded["attempts"], (storm, guarded)

    # Breaker transition log is deterministic: a second identical run
    # replays the same (tick, from, to) sequence exactly.
    _, _, transitions_again = storm_drive("guarded", outcome["storm_gap"])
    assert transitions_again == outcome["transitions"]
    assert transitions_again, "breaker never transitioned"

    # Observation is schedule-neutral: re-running the guarded cell with
    # the span recorder + Chrome sink (TRACE_E15.json) reproduces the
    # measured row exactly.
    traced, _, _ = storm_drive("guarded", outcome["storm_gap"], trace=True)
    probe = {
        k: v for k, v in guarded.items()
        if k not in ("knee", "knee_goodput", "post_frac_of_knee")
    }
    assert traced == probe, "span recording changed the E15 guarded cell"


def test_e15_overload_speed(benchmark):
    benchmark.pedantic(storm_drive, args=("guarded", 17), rounds=1, iterations=1)


if __name__ == "__main__":
    outcome = run_experiment()
    print_table("E15", bench_rows(outcome))
