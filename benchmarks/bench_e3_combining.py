"""E3 (§2.7.1): dictionary request combining — work saved vs popularity skew.

Claim reproduced: "it is wasteful to execute multiple Search processes
that search for the meaning of the same word"; combining converts
duplicate in-flight requests into followers of one execution.  The win
grows with workload skew (Zipf exponent) and with offered concurrency,
and vanishes when all requests are distinct.
"""

from __future__ import annotations

import pytest

from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import Dictionary
from repro.workloads import Zipf, word_corpus

from harness import print_table

QUERIES = 96
SEARCH_WORK = 50
CORPUS = word_corpus(400)
ENTRIES = {word: f"def-{word}" for word in CORPUS}


def drive(skew: float, combining: bool) -> dict:
    queries = list(Zipf(CORPUS, s=skew, seed=11).stream(QUERIES))
    kernel = Kernel(costs=FREE)
    dictionary = Dictionary(
        kernel,
        entries=ENTRIES,
        search_max=32,
        search_work=SEARCH_WORK,
        combining=combining,
    )

    def client(word):
        return (yield dictionary.search(word))

    def main():
        return (yield Par(*[lambda w=w: client(w) for w in queries]))

    results = kernel.run_process(main)
    assert all(r == ENTRIES[w] for r, w in zip(results, queries))
    return {
        "zipf_s": skew,
        "combining": combining,
        "searches": dictionary.searches_executed,
        "combined": kernel.stats.calls_combined,
        "work_ticks": kernel.stats.work_ticks,
        "elapsed": kernel.clock.now,
    }


def run_experiment() -> list[dict]:
    rows = []
    for skew in (0.0, 0.8, 1.2, 1.6, 2.0):
        rows.append(drive(skew, combining=False))
        rows.append(drive(skew, combining=True))
    return rows


def test_e3_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E3 dictionary combining: {QUERIES} concurrent queries, "
            f"sweep Zipf skew",
            rows,
            note="work_ticks = simulated CPU spent searching",
        )
    # The shape: combining never does more work, and its advantage grows
    # with skew.
    savings = []
    for skew in (0.0, 0.8, 1.2, 1.6, 2.0):
        off = next(r for r in rows if r["zipf_s"] == skew and not r["combining"])
        on = next(r for r in rows if r["zipf_s"] == skew and r["combining"])
        assert on["searches"] <= off["searches"]
        savings.append(off["work_ticks"] - on["work_ticks"])
    assert savings[-1] > savings[0]  # more skew, more saving
    assert savings[-1] > 0


def test_e3_identical_results_with_and_without(benchmark):
    def run():
        off = drive(1.2, combining=False)
        on = drive(1.2, combining=True)
        # Same workload answered either way; combining only cuts work.
        assert on["work_ticks"] < off["work_ticks"]

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("combining", (False, True))
def test_e3_speed(benchmark, combining):
    benchmark(drive, 1.2, combining)


if __name__ == "__main__":
    print_table("E3", run_experiment())
