"""E5 (§2.8.2): parallel bounded buffer vs serial buffer — crossover.

Claim reproduced: for "potentially long messages", copying in parallel on
disjoint slots (hidden Place parameters) beats the §2.4.1 serial buffer;
for tiny messages the extra manager traffic makes the serial buffer
competitive.  Sweeps message copy cost and the producer/consumer count to
locate the crossover.
"""

from __future__ import annotations

import pytest

from repro.kernel import Kernel, Par
from repro.kernel.costs import FREE
from repro.stdlib import BoundedBuffer, ParallelBuffer

from harness import print_table

PER_PRODUCER = 6


def drive(buffer_kind: str, copy_work: int, parties: int) -> dict:
    kernel = Kernel(costs=FREE)
    if buffer_kind == "serial":
        buf = BoundedBuffer(kernel, size=2 * parties, work=copy_work)
    else:
        buf = ParallelBuffer(
            kernel,
            size=2 * parties,
            producer_max=parties,
            consumer_max=parties,
            copy_work=copy_work,
        )
    received = []

    def producer(base):
        for i in range(PER_PRODUCER):
            yield buf.deposit((base, i))

    def consumer():
        for _ in range(PER_PRODUCER):
            received.append((yield buf.remove()))

    def main():
        yield Par(
            *[lambda b=b: producer(b) for b in range(parties)],
            *[lambda: consumer() for _ in range(parties)],
        )

    kernel.run_process(main)
    assert len(received) == parties * PER_PRODUCER
    total_ops = 2 * parties * PER_PRODUCER
    elapsed = max(1, kernel.clock.now)  # copy_work=0 can finish at t=0
    return {
        "buffer": buffer_kind,
        "copy_work": copy_work,
        "parties": parties,
        "virtual_time": kernel.clock.now,
        "ops_per_ktick": round(total_ops * 1000 / elapsed, 1),
    }


def run_experiment() -> list[dict]:
    rows = []
    for copy_work in (0, 5, 20, 80, 320):
        for kind in ("serial", "parallel"):
            rows.append(drive(kind, copy_work, parties=4))
    for parties in (1, 2, 4, 8):
        for kind in ("serial", "parallel"):
            rows.append(drive(kind, 80, parties))
    return rows


def test_e5_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    sweep_work = [r for r in rows if r["parties"] == 4][:10]
    sweep_parties = [r for r in rows if r["copy_work"] == 80]
    with capsys.disabled():
        print_table(
            "E5a parallel vs serial buffer: sweep message copy cost "
            "(4 producers / 4 consumers)",
            sweep_work,
        )
        print_table(
            "E5b parallel vs serial buffer: sweep producer/consumer count "
            "(copy_work=80)",
            sweep_parties,
        )
    # The §2.8.2 shape: with long messages the parallel buffer wins big...
    serial_long = next(
        r for r in rows if r["buffer"] == "serial"
        and r["copy_work"] == 320 and r["parties"] == 4
    )
    parallel_long = next(
        r for r in rows if r["buffer"] == "parallel"
        and r["copy_work"] == 320 and r["parties"] == 4
    )
    assert parallel_long["virtual_time"] * 2 < serial_long["virtual_time"]
    # ...and with free copies there is nothing to parallelize: serial is
    # at least as fast (the crossover).
    serial_zero = next(
        r for r in rows if r["buffer"] == "serial"
        and r["copy_work"] == 0 and r["parties"] == 4
    )
    parallel_zero = next(
        r for r in rows if r["buffer"] == "parallel"
        and r["copy_work"] == 0 and r["parties"] == 4
    )
    assert serial_zero["virtual_time"] <= parallel_zero["virtual_time"] * 1.5
    # Throughput scales with parties for the parallel buffer (the load
    # grows with the party count while the makespan stays flat).
    parallel_by_parties = {
        r["parties"]: r["ops_per_ktick"]
        for r in rows
        if r["buffer"] == "parallel" and r["copy_work"] == 80
    }
    assert parallel_by_parties[8] > 4 * parallel_by_parties[1]
    serial_by_parties = {
        r["parties"]: r["ops_per_ktick"]
        for r in rows
        if r["buffer"] == "serial" and r["copy_work"] == 80
    }
    # The serial buffer cannot scale: its throughput stays flat.
    assert serial_by_parties[8] <= 1.2 * serial_by_parties[1]


@pytest.mark.parametrize("kind", ("serial", "parallel"))
def test_e5_speed(benchmark, kind):
    benchmark(drive, kind, 80, 4)


if __name__ == "__main__":
    print_table("E5", run_experiment())
