"""E1 (§2.4.1): bounded buffer — manager vs semaphore/monitor/path baselines.

Claim reproduced: the manager subsumes monitor-style exclusion; its
centralized scheduling costs a modest constant overhead per operation
(extra rendezvous hops) but requires no synchronization code in the
bodies.  Sweeps buffer size and reports throughput plus kernel event
counts for each mechanism.
"""

from __future__ import annotations

import pytest

from repro.baselines import MonitorBuffer, PathBuffer, SemaphoreBuffer
from repro.kernel import Kernel
from repro.stdlib import BoundedBuffer

from harness import attach_chrome_trace, print_table, write_results

MESSAGES = 200
SIZES = (1, 4, 16)


def drive_manager(size: int, trace: bool = False) -> dict:
    kernel = Kernel()
    if trace:
        attach_chrome_trace(kernel, "e1")
    buf = BoundedBuffer(kernel, size=size)

    def producer():
        for i in range(MESSAGES):
            yield buf.deposit(i)

    def consumer():
        for _ in range(MESSAGES):
            yield buf.remove()

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    if trace:
        kernel.obs.close()
    return _row("manager", size, kernel)


def drive_baseline(cls, size: int) -> dict:
    kernel = Kernel()
    buf = cls(kernel, size=size)

    def producer():
        for i in range(MESSAGES):
            yield from buf.deposit(i)

    def consumer():
        for _ in range(MESSAGES):
            yield from buf.remove()

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    return _row(cls.__name__.replace("Buffer", "").lower(), size, kernel)


def _row(mechanism: str, size: int, kernel: Kernel) -> dict:
    return {
        "mechanism": mechanism,
        "size": size,
        "virtual_time": kernel.clock.now,
        "ops_per_ktick": round(2 * MESSAGES * 1000 / kernel.clock.now, 1),
        "switches": kernel.stats.context_switches,
        "spawns": kernel.stats.spawns,
    }


def run_experiment() -> list[dict]:
    rows = []
    for size in SIZES:
        rows.append(drive_manager(size))
        rows.append(drive_baseline(SemaphoreBuffer, size))
        rows.append(drive_baseline(MonitorBuffer, size))
        rows.append(drive_baseline(PathBuffer, size))
    return rows


def test_e1_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E1 bounded buffer: manager vs baselines "
            f"({MESSAGES} messages each way)",
            rows,
            note="same transfer, four mechanisms, identical kernel",
        )
    write_results(
        "e1", rows, seed=0,
        note=f"{MESSAGES} messages each way, sizes {SIZES}",
    )
    # Trace artifact: re-run the size-4 manager cell with spans and the
    # Chrome sink attached (TRACE_E1.json — input for
    # `python -m repro.obs.analyze`).  The measured rows stay span-free,
    # and the traced re-run must reproduce the untraced row exactly.
    traced = drive_manager(4, trace=True)
    untraced = next(
        r for r in rows if r["mechanism"] == "manager" and r["size"] == 4
    )
    assert traced == untraced, "span recording changed the E1 manager cell"
    # The claim's shape: the manager costs a *constant* number of extra
    # rendezvous hops per operation — overhead per op does not grow with
    # buffer size, and stays within an order of magnitude of the leanest
    # scattered-synchronization baseline.
    by_size = {}
    for row in rows:
        by_size.setdefault(row["size"], {})[row["mechanism"]] = row
    manager_per_op = [
        by_size[s]["manager"]["virtual_time"] / (2 * MESSAGES) for s in SIZES
    ]
    assert max(manager_per_op) < 1.3 * min(manager_per_op)  # flat in size
    for size, group in by_size.items():
        fastest = min(r["virtual_time"] for r in group.values())
        assert group["manager"]["virtual_time"] <= 10 * fastest


@pytest.mark.parametrize("size", SIZES)
def test_e1_manager_buffer_speed(benchmark, size):
    benchmark(drive_manager, size)


def test_e1_semaphore_buffer_speed(benchmark):
    benchmark(drive_baseline, SemaphoreBuffer, 4)


def test_e1_monitor_buffer_speed(benchmark):
    benchmark(drive_baseline, MonitorBuffer, 4)


if __name__ == "__main__":
    print_table("E1", run_experiment())
