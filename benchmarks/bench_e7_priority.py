"""E7 (§1, §2.3, §3): the high-priority manager is "more receptive".

Claim reproduced: "the implementation should execute the manager at a
higher priority compared to the other processes in the object" so that
"synchronization requests are delivered to the manager with minimum
delay".  On a single contended CPU, entry bodies burn simulated cycles;
we sweep the manager's priority and measure how long calls wait before
being accepted (queueing delay) and overall makespan.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.core.monitoring import queue_times
from repro.kernel import (
    PRIORITY_BACKGROUND,
    PRIORITY_MANAGER,
    PRIORITY_NORMAL,
    Kernel,
    Par,
    Select,
)

from harness import print_table

CALLERS = 24
BODY_WORK = 25


class Service(AlpsObject):
    """Concurrent service whose bodies consume real (simulated) CPU."""

    @entry(returns=1, array=8, work=BODY_WORK)
    def op(self, n):
        return n

    @manager_process(intercepts=["op"])
    def mgr(self):
        while True:
            result = yield Select(
                AcceptGuard(self, "op"),
                AwaitGuard(self, "op"),
            )
            if isinstance(result.guard, AcceptGuard):
                yield Start(result.value)
            else:
                yield Finish(result.value)


def drive(manager_priority: int, label: str) -> dict:
    kernel = Kernel(num_cpus=1)
    service = Service(kernel, manager_priority=manager_priority, record_calls=True)

    def caller(n):
        return (yield service.op(n))

    def main():
        return (yield Par(*[lambda i=i: caller(i) for i in range(CALLERS)]))

    kernel.run_process(main)
    waits = queue_times(service.completed_calls("op"))
    return {
        "manager_priority": label,
        "mean_accept_wait": round(waits.mean, 1),
        "p95_accept_wait": waits.p95,
        "max_accept_wait": waits.maximum,
        "makespan": kernel.clock.now,
    }


def run_experiment() -> list[dict]:
    return [
        drive(PRIORITY_MANAGER, "high (paper)"),
        drive(PRIORITY_NORMAL, "equal to bodies"),
        drive(PRIORITY_BACKGROUND, "below bodies"),
    ]


def test_e7_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E7 manager priority: {CALLERS} callers, 1 CPU, "
            f"{BODY_WORK}-tick bodies",
            rows,
            note="accept wait = ticks from call issue to manager accept",
        )
    high, equal, low = rows
    # The paper's recommendation: a high-priority manager accepts calls
    # no later (and typically much sooner) than a deprioritized one.
    assert high["mean_accept_wait"] <= equal["mean_accept_wait"]
    assert high["mean_accept_wait"] < low["mean_accept_wait"]
    assert high["p95_accept_wait"] <= low["p95_accept_wait"]


@pytest.mark.parametrize(
    "priority", (PRIORITY_MANAGER, PRIORITY_BACKGROUND)
)
def test_e7_speed(benchmark, priority):
    benchmark(drive, priority, str(priority))


if __name__ == "__main__":
    print_table("E7", run_experiment())
