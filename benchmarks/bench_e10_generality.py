"""E10 (§1, §4): the manager generalizes the classical abstractions, and
the whole system runs distributed on the paper's transputer grid.

Part A — the same readers-writers resource programmed four ways (ALPS
manager, monitor, serializer, path expression) services an identical
trace; all agree semantically, and the table shows each mechanism's
event-count profile.

Part B — remote entry calls on the 4×4 transputer grid: response time
scales with hop distance; co-located calls are free (the §1 RPC model).
"""

from __future__ import annotations


from repro.baselines import (
    MonitorReadersWriters,
    PathReadersWriters,
    SerializerReadersWriters,
)
from repro.kernel import Delay, Kernel, Par
from repro.kernel.costs import FREE
from repro.net import transputer_grid
from repro.stdlib import Database, Dictionary

from harness import print_table

READERS = 16
WRITERS = 4


def _drive_generic(db, kernel, uses_yield_from: bool) -> None:
    def reader(i):
        yield Delay(i % 4)
        if uses_yield_from:
            yield from db.read("k")
        else:
            yield db.read("k")

    def writer(i):
        yield Delay(i % 6)
        if uses_yield_from:
            yield from db.write("k", i)
        else:
            yield db.write("k", i)

    def main():
        yield Par(
            *[lambda i=i: reader(i) for i in range(READERS)],
            *[lambda i=i: writer(i) for i in range(WRITERS)],
        )

    kernel.run_process(main)


def drive_mechanism(name: str) -> dict:
    kernel = Kernel(costs=FREE)
    if name == "manager":
        db = Database(kernel, read_max=4, read_work=10, write_work=20, initial={"k": 0})
        _drive_generic(db, kernel, uses_yield_from=False)
        violations = db.exclusion_violations
    elif name == "monitor":
        db = MonitorReadersWriters(kernel, read_max=4, read_work=10, write_work=20)
        _drive_generic(db, kernel, uses_yield_from=True)
        violations = db.exclusion_violations
    elif name == "serializer":
        db = SerializerReadersWriters(kernel, read_work=10, write_work=20)
        _drive_generic(db, kernel, uses_yield_from=True)
        violations = 0
    else:  # path expressions
        db = PathReadersWriters(kernel, read_work=10, write_work=20)
        _drive_generic(db, kernel, uses_yield_from=True)
        violations = db.exclusion_violations
    return {
        "mechanism": name,
        "virtual_time": kernel.clock.now,
        "violations": violations,
        "switches": kernel.stats.context_switches,
        "sends+receives": kernel.stats.sends + kernel.stats.receives,
        "selects": kernel.stats.selects,
    }


def drive_grid() -> list[dict]:
    kernel = Kernel(costs=FREE)
    net = transputer_grid(kernel, 4, 4, link_latency=1)
    dictionary = Dictionary(
        kernel, entries={"w": "m"}, search_max=32, search_work=5,
        combining=False, record_calls=True,
    )
    home = net.node("t0_0")
    home.place(dictionary)
    procs = {}
    for node in net.nodes():
        def client():
            return (yield dictionary.search("w"))

        procs[node.name] = (node, node.spawn(client))
    kernel.run()
    calls = dictionary.completed_calls("search")
    out = {}
    for call in calls:
        node = call.caller.node
        hops = net.latency(node, home) if node is not home else 0
        out.setdefault(hops, []).append(call.response_time)
    return [
        {
            "hops": hops,
            "callers": len(times),
            "mean_response": round(sum(times) / len(times), 1),
        }
        for hops, times in sorted(out.items())
    ]


def run_experiment() -> tuple[list[dict], list[dict]]:
    mechanisms = [
        drive_mechanism("manager"),
        drive_mechanism("monitor"),
        drive_mechanism("serializer"),
        drive_mechanism("path"),
    ]
    grid = drive_grid()
    return mechanisms, grid


def test_e10_table(benchmark, capsys):
    mechanisms, grid = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E10a one resource, four mechanisms: {READERS} readers / "
            f"{WRITERS} writers",
            mechanisms,
            note="§1: the manager generalizes monitor/serializer/paths",
        )
        print_table(
            "E10b remote calls on the 4x4 transputer grid (§4)",
            grid,
            note="16 callers, one per node; object on t0_0",
        )
    for row in mechanisms:
        assert row["violations"] == 0
    # Response time grows monotonically with hop distance.
    means = [row["mean_response"] for row in grid]
    assert means == sorted(means)
    assert grid[0]["hops"] == 0


def test_e10_manager_speed(benchmark):
    benchmark(drive_mechanism, "manager")


def test_e10_grid_speed(benchmark):
    benchmark(drive_grid)


if __name__ == "__main__":
    m, g = run_experiment()
    print_table("E10a", m)
    print_table("E10b", g)
