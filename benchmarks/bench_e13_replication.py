"""E13: availability under crashes — replicated vs restart-in-place.

Not an experiment from the 1988 paper (§4 stops at recovering a single
ALPS object on its node), but the payoff question for `repro.replication`:
what does running N copies of an object buy while nodes crash?

A replicated KVStore serves a mixed read/write workload on a 6-ring for
a fixed virtual-time horizon.  The sweep crosses replica count (1 = the
paper's restart-in-place baseline, 2, 3) with a fault plan:

* ``calm``  — no faults (replication overhead is visible here);
* ``crash`` — the primary's node dies mid-run and restarts much later;
* ``churn`` — the primary dies and restarts, then a backup does too.

Reported per cell: completed fraction, goodput (ops per kilotick),
failovers/promotions taken, worst read staleness, and ``lost_acked`` —
acknowledged writes missing from any live replica at the end, which must
be 0 everywhere (the durability claim).  The headline check: under the
``crash`` plan, ``replicas=2`` keeps strictly more goodput than the
unreplicated baseline, which visibly stalls for the whole down window.
"""

from __future__ import annotations

from repro.errors import RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.replication import Replicated
from repro.stdlib import KVStore, Supervisor

from harness import attach_chrome_trace, print_table, write_results

SEED = 7
HORIZON = 4000      # virtual ticks simulated per cell
OPS_DEADLINE = 3200  # clients stop issuing here so recovery can drain
KEYS = 4
TIMEOUT = 60
REPLICA_NODES = ("n0", "n2", "n4")  # Supervisor lives on n5, never crashed

PLANS = {
    "calm": lambda: FaultPlan(seed=SEED, detection_delay=20),
    "crash": lambda: (
        FaultPlan(seed=SEED, detection_delay=20)
        .crash_node("n0", at=1200, restart_at=2600)
    ),
    "churn": lambda: (
        FaultPlan(seed=SEED, detection_delay=20)
        .crash_node("n0", at=1000, restart_at=2000)
        .crash_node("n2", at=2400, restart_at=3000)
    ),
}


def drive(replicas: int, plan_name: str, trace: bool = False) -> dict:
    kernel = Kernel(costs=FREE, seed=SEED)
    if trace:
        attach_chrome_trace(kernel, "e13")
    net = ring(kernel, 6)
    runtime = install(kernel, net, PLANS[plan_name]())
    sup = net.node("n5").place(Supervisor(kernel, name="sup", faults=runtime))
    rep = Replicated(
        lambda name: KVStore(kernel, name=name),
        net,
        replicas,
        writes=("put", "delete"),
        nodes=list(REPLICA_NODES)[:replicas],
        supervisor=sup,
        call_timeout=TIMEOUT,
        heartbeat_interval=40,
        seed=SEED,
    )

    acked: dict[str, int] = {}  # key -> last acknowledged value
    counts = {"ok": 0, "failed": 0}

    def writer():
        i = 0
        while kernel.clock.now < OPS_DEADLINE:
            key = f"k{i % KEYS}"
            try:
                yield from rep.put(key, i)
                acked[key] = i
                counts["ok"] += 1
            except RemoteCallError:
                counts["failed"] += 1
            i += 1
            yield Delay(60)

    def reader(start, gap):
        def body():
            yield Delay(start)
            i = 0
            while kernel.clock.now < OPS_DEADLINE:
                try:
                    yield from rep.get(f"k{i % KEYS}")
                    counts["ok"] += 1
                except RemoteCallError:
                    counts["failed"] += 1
                i += 1
                yield Delay(gap)

        return body

    kernel.spawn(writer, name="writer")
    net.node("n1").spawn(reader(7, 45), name="reader1")
    net.node("n3").spawn(reader(13, 51), name="reader3")
    kernel.run(until=HORIZON)
    if trace:
        kernel.obs.close()

    # Durability audit: every acknowledged write must be present on every
    # replica the view believes is live.
    lost = 0
    for name in rep.view.live():
        data = rep.replica(name).data
        for key, value in acked.items():
            if data.get(key) != value:
                lost += 1
    attempted = counts["ok"] + counts["failed"]
    staleness = rep.staleness()
    return {
        "replicas": replicas,
        "plan": plan_name,
        "ok": counts["ok"],
        "failed": counts["failed"],
        "completed_frac": round(counts["ok"] / max(1, attempted), 3),
        "goodput_per_ktick": round(counts["ok"] * 1000 / HORIZON, 1),
        "failovers": kernel.metrics.value("replication.failovers"),
        "promotions": kernel.metrics.value("replication.promotions"),
        "stale_max": max(staleness) if staleness else 0,
        "lost_acked": lost,
    }


def run_experiment() -> list[dict]:
    return [
        drive(replicas, plan)
        for plan in PLANS
        for replicas in (1, 2, 3)
    ]


def cell_row(rows: list[dict], replicas: int, plan: str) -> dict:
    return next(
        r for r in rows if r["replicas"] == replicas and r["plan"] == plan
    )


def test_e13_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E13 availability under crashes "
            f"(replicated KVStore, ring of 6, horizon {HORIZON})",
            rows,
            note="same workload and fault seed per row; only replication varies",
        )
    write_results(
        "e13", rows, seed=SEED,
        note=f"plans {tuple(PLANS)}, replicas (1, 2, 3), timeout {TIMEOUT}",
    )
    # Trace artifact: re-run the headline crash cell with spans and the
    # Chrome sink attached (TRACE_E13.json, openable in Perfetto).  The
    # measured table rows above stay span-free.
    traced = drive(2, "crash", trace=True)
    assert traced == cell_row(rows, 2, "crash"), (
        "span recording changed the E13 crash-cell results"
    )
    cell = {(r["replicas"], r["plan"]): r for r in rows}

    # Durability: no cell may lose an acknowledged write.
    assert all(r["lost_acked"] == 0 for r in rows)

    # Calm network: replication completes everything and never fails over.
    for replicas in (1, 2, 3):
        assert cell[(replicas, "calm")]["completed_frac"] == 1.0
        assert cell[(replicas, "calm")]["failovers"] == 0

    # The headline: under the crashing plan, two replicas keep strictly
    # more goodput than restart-in-place, which stalls for the window.
    assert (
        cell[(2, "crash")]["goodput_per_ktick"]
        > cell[(1, "crash")]["goodput_per_ktick"]
    )
    assert cell[(1, "crash")]["completed_frac"] < 1.0
    assert cell[(2, "crash")]["completed_frac"] == 1.0
    assert cell[(2, "crash")]["promotions"] >= 1

    # Churn: even with a second (backup) crash, replication holds up.
    assert (
        cell[(3, "churn")]["goodput_per_ktick"]
        > cell[(1, "churn")]["goodput_per_ktick"]
    )


def test_e13_replication_speed(benchmark):
    benchmark.pedantic(drive, args=(3, "churn"), rounds=1, iterations=1)


if __name__ == "__main__":
    print_table("E13", run_experiment())
