"""E11 (ablations): design choices DESIGN.md calls out.

Not a paper experiment — ablations of this implementation's own choices:

* **arbitration** — points the paper leaves to "the implementation"
  (slot attachment, ready-guard choice) under ``ordered`` vs seeded
  ``random`` policy: semantics must be identical, fairness may differ;
* **interception width** — intercepting parameters the manager does not
  need (§2.6 warns it is "wasteful to require the manager to receive all
  the parameters"): measures the bookkeeping delta;
* **front end** — the same bounded buffer as a native Python object vs
  compiled from ALPS source: identical virtual-time behaviour, measured
  interpreter overhead in wall-clock time.
"""

from __future__ import annotations


from repro.core import (
    AcceptGuard,
    AlpsObject,
    entry,
    icpt,
    manager_process,
)
from repro.kernel import Kernel, Par, Select
from repro.kernel.costs import FREE
from repro.lang import compile_program
from repro.stdlib import BoundedBuffer, ParallelBuffer

from harness import print_table

MESSAGES = 120


# -- arbitration ---------------------------------------------------------


def drive_arbitration(policy: str, seed: int) -> dict:
    kernel = Kernel(costs=FREE, seed=seed, arbitration=policy)
    buf = ParallelBuffer(kernel, size=4, producer_max=3, consumer_max=3, copy_work=7)
    received = []

    def producer(base):
        for i in range(10):
            yield buf.deposit((base, i))

    def consumer():
        for _ in range(10):
            received.append((yield buf.remove()))

    def main():
        yield Par(
            *[lambda b=b: producer(b) for b in range(3)],
            *[lambda: consumer() for _ in range(3)],
        )

    kernel.run_process(main)
    conserved = sorted(received) == [(b, i) for b in range(3) for i in range(10)]
    return {
        "policy": f"{policy}/seed{seed}",
        "conserved": conserved,
        "virtual_time": kernel.clock.now,
        "switches": kernel.stats.context_switches,
    }


# -- interception width ----------------------------------------------------


def drive_interception(width: int) -> dict:
    def op(self, a, b, c, d):
        return a + b + c + d

    def mgr(self):
        while True:
            result = yield Select(AcceptGuard(self, "op"))
            yield from self.execute(result.value)

    namespace = {
        "op": entry(returns=1, array=4)(op),
        "mgr": manager_process(intercepts={"op": icpt(params=width)})(mgr),
    }
    cls = type(f"Wide{width}", (AlpsObject,), namespace)

    kernel = Kernel()
    obj = cls(kernel)

    def caller(n):
        return (yield obj.op(n, n, n, n))

    def main():
        return (yield Par(*[lambda i=i: caller(i) for i in range(40)]))

    results = kernel.run_process(main)
    assert results == [4 * i for i in range(40)]
    return {
        "intercepted_params": width,
        "virtual_time": kernel.clock.now,
        "resumptions": kernel.stats.resumptions,
    }


# -- surface language vs native ------------------------------------------------

BUFFER_SOURCE = """
object Buffer defines
  proc Deposit(Message);
  proc Remove() returns (Message);
end Buffer;

object Buffer implements
  var N: int := 4;
  var Buf := array(N);
  var InPtr: int := 0;
  var OutPtr: int := 0;
  proc Deposit(M);
  begin
    Buf[InPtr] := M;
    InPtr := (InPtr + 1) mod N;
  end Deposit;
  proc Remove() returns (1);
  begin
    return (Buf[OutPtr]);
  end Remove;
  manager
    intercepts Deposit, Remove;
    var Count: int := 0;
  begin
    loop
      accept Deposit when Count < N =>
        execute Deposit;
        Count := Count + 1;
    or
      accept Remove when Count > 0 =>
        execute Remove;
        OutPtr := (OutPtr + 1) mod N;
        Count := Count - 1;
    end loop;
  end manager;
end Buffer;
"""


def drive_native() -> int:
    kernel = Kernel()
    buf = BoundedBuffer(kernel, size=4)

    def producer():
        for i in range(MESSAGES):
            yield buf.deposit(i)

    def consumer():
        for _ in range(MESSAGES):
            yield buf.remove()

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    return kernel.clock.now


def drive_compiled() -> int:
    kernel = Kernel()
    module = compile_program(BUFFER_SOURCE)
    buf = module.instantiate(kernel, "Buffer")

    def producer():
        for i in range(MESSAGES):
            yield buf.call("Deposit", i)

    def consumer():
        for _ in range(MESSAGES):
            yield buf.call("Remove")

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    return kernel.clock.now


def run_experiment():
    arbitration = [
        drive_arbitration("ordered", 0),
        drive_arbitration("random", 1),
        drive_arbitration("random", 2),
        drive_arbitration("random", 3),
    ]
    interception = [drive_interception(w) for w in (0, 2, 4)]
    frontend = [
        {"front_end": "native python", "virtual_time": drive_native()},
        {"front_end": "compiled ALPS source", "virtual_time": drive_compiled()},
    ]
    return arbitration, interception, frontend


def test_e11_tables(benchmark, capsys):
    arbitration, interception, frontend = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    with capsys.disabled():
        print_table(
            "E11a arbitrary-choice policy: conservation under any arbitration",
            arbitration,
        )
        print_table(
            "E11b interception width: intercepting unneeded parameters",
            interception,
            note="§2.6: manager receives only an initial subsequence",
        )
        print_table(
            "E11c surface language: same buffer, same virtual time",
            frontend,
        )
    assert all(row["conserved"] for row in arbitration)
    # Interception width must not change scheduling outcomes materially.
    times = [row["virtual_time"] for row in interception]
    assert max(times) <= 1.2 * min(times)
    # The compiled object is semantically identical: virtual time equal.
    assert frontend[0]["virtual_time"] == frontend[1]["virtual_time"]


def test_e11_native_wallclock(benchmark):
    benchmark(drive_native)


def test_e11_compiled_wallclock(benchmark):
    # Interpreter overhead shows up here (wall time), never in virtual time.
    benchmark(drive_compiled)


if __name__ == "__main__":
    a, b, c = run_experiment()
    print_table("E11a", a)
    print_table("E11b", b)
    print_table("E11c", c)
