"""E12: goodput under message loss — fault injection and recovery policies.

Not an experiment from the 1988 paper (whose machines did not drop
messages), but the natural stress test for `repro.faults`: a dictionary
object serves timed remote searches over links that lose a fraction of
all messages.  Three recovery policies face each loss rate:

* ``none``  — one timed attempt; a lost request or response is a failure.
* ``fixed`` — ``retry`` with constant backoff.
* ``expo``  — ``retry`` with exponential backoff + jitter.

Reported per cell: completed fraction, goodput (completions per kilo-
tick), p95 response time and retry count.  The claim checked: recovery
degrades *gracefully* — with retries, 10% loss still completes every
call and keeps a large fraction of the loss-free goodput, while the
no-recovery policy visibly collapses.
"""

from __future__ import annotations


from repro.errors import RemoteCallError
from repro.faults import ExponentialBackoff, FaultPlan, FixedBackoff, install, retry
from repro.kernel import Delay, Kernel
from repro.kernel.costs import FREE
from repro.net import ring
from repro.stdlib import Dictionary

from harness import print_table, write_results

SEED = 7
CLIENTS = 3  # one per non-server node of the 4-ring
OPS_PER_CLIENT = 40
# A loss-free search answers in ~15 ticks; the timeout leaves headroom
# for queueing but keeps the price of a lost message proportionate.
TIMEOUT = 40
LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
POLICIES = {
    "none": None,
    "fixed": FixedBackoff(delay=20, max_attempts=6),
    "expo": ExponentialBackoff(base=10, max_attempts=6, jitter=5),
}


def drive(loss: float, policy_name: str) -> dict:
    policy = POLICIES[policy_name]
    kernel = Kernel(costs=FREE, seed=SEED)
    net = ring(kernel, 4)
    d = net.node("n1").place(
        Dictionary(kernel, name="d", entries={"w": "meaning"}, search_work=10)
    )
    install(kernel, net, FaultPlan(seed=SEED).drop_messages(loss))

    completed: list[int] = []  # response times of successes
    failed = [0]

    def client(idx):
        def body():
            yield Delay(idx)  # desynchronize the arrival fronts
            for _ in range(OPS_PER_CLIENT):
                start = kernel.clock.now
                try:
                    if policy is None:
                        yield d.search("w", timeout=TIMEOUT)
                    else:
                        yield from retry(
                            lambda: d.search("w", timeout=TIMEOUT),
                            policy,
                            seed=SEED + idx,
                        )
                except RemoteCallError:
                    failed[0] += 1
                else:
                    completed.append(kernel.clock.now - start)
                yield Delay(5)

        net.node(f"n{idx}").spawn(body, name=f"client{idx}")

    for idx in (0, 2, 3):
        client(idx)
    kernel.run()

    total = CLIENTS * OPS_PER_CLIENT
    span = max(1, kernel.clock.now)
    latencies = sorted(completed)
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else None
    return {
        "loss": loss,
        "policy": policy_name,
        "completed": len(completed),
        "failed": failed[0],
        "completed_frac": round(len(completed) / total, 3),
        "goodput_per_ktick": round(len(completed) * 1000 / span, 1),
        "p95_response": p95,
        "retries": kernel.metrics.value("retry.attempts"),
        "virtual_time": kernel.clock.now,
    }


def run_experiment() -> list[dict]:
    return [
        drive(loss, name) for loss in LOSS_RATES for name in POLICIES
    ]


def test_e12_table(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E12 goodput under message loss "
            f"({CLIENTS}x{OPS_PER_CLIENT} timed searches, ring of 4)",
            rows,
            note="same workload and fault seed per row; only the policy varies",
        )
    write_results(
        "e12", rows, seed=SEED,
        note=f"loss rates {LOSS_RATES}, timeout {TIMEOUT}",
    )
    cell = {(r["loss"], r["policy"]): r for r in rows}

    # Loss-free: every policy completes everything, no retries drawn.
    for name in POLICIES:
        assert cell[(0.0, name)]["completed_frac"] == 1.0
        assert cell[(0.0, name)]["retries"] == 0

    # Graceful degradation: at 10% loss the retrying policies still
    # complete every call and keep most of the loss-free goodput.
    for name in ("fixed", "expo"):
        assert cell[(0.10, name)]["completed_frac"] == 1.0
        assert (
            cell[(0.10, name)]["goodput_per_ktick"]
            >= 0.5 * cell[(0.0, name)]["goodput_per_ktick"]
        )

    # ... while one-shot calls visibly lose work once messages drop.
    assert cell[(0.10, "none")]["completed_frac"] < 1.0
    assert (
        cell[(0.20, "expo")]["completed_frac"]
        > cell[(0.20, "none")]["completed_frac"]
    )


def test_e12_fault_runtime_speed(benchmark):
    benchmark.pedantic(drive, args=(0.10, "expo"), rounds=1, iterations=1)


if __name__ == "__main__":
    print_table("E12", run_experiment())
