#!/usr/bin/env python
"""Quickstart: the paper's §2.4.1 bounded buffer, end to end.

Builds an ALPS object with a manager, runs a producer and a consumer
against it on the deterministic kernel, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import (
    AcceptGuard,
    AlpsObject,
    Kernel,
    Select,
    entry,
    manager_process,
)


class Buffer(AlpsObject):
    """object Buffer defines proc Deposit(Message); proc Remove returns(Message)."""

    def setup(self, size=4):
        self.size = size
        self.buf = [None] * size
        self.inptr = 0
        self.outptr = 0

    @entry
    def deposit(self, message):
        self.buf[self.inptr] = message
        self.inptr = (self.inptr + 1) % self.size

    @entry(returns=1)
    def remove(self):
        message = self.buf[self.outptr]
        self.outptr = (self.outptr + 1) % self.size
        return message

    @manager_process(intercepts=["deposit", "remove"])
    def mgr(self):
        # The §2.4.1 manager: Count is local to the manager; calls are
        # accepted only when their synchronization condition holds, and
        # each accepted call is executed to completion (execute = start;
        # await; finish), giving monitor-style mutual exclusion.
        count = 0
        while True:
            result = yield Select(
                AcceptGuard(self, "deposit", when=lambda: count < self.size),
                AcceptGuard(self, "remove", when=lambda: count > 0),
            )
            call = result.value
            yield from self.execute(call)
            count += 1 if call.entry == "deposit" else -1


def main():
    kernel = Kernel()
    buffer = Buffer(kernel, size=3)

    print(buffer.definition().describe())
    print()

    def producer():
        for i in range(10):
            yield buffer.deposit(f"message-{i}")
            print(f"[{kernel.clock.now:>4}] producer deposited message-{i}")

    def consumer():
        for _ in range(10):
            message = yield buffer.remove()
            print(f"[{kernel.clock.now:>4}] consumer removed  {message}")

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()

    print()
    print(
        f"done at t={kernel.clock.now}: "
        f"{kernel.stats.accepts} accepts, {kernel.stats.starts} starts, "
        f"{kernel.stats.finishes} finishes, "
        f"{kernel.stats.context_switches} context switches"
    )


if __name__ == "__main__":
    main()
