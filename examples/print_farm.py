#!/usr/bin/env python
"""A print farm: the §2.8.1 spooler under a bursty office workload.

Shows hidden parameters/results in action: the manager hands each job a
printer as a hidden parameter, and the body returns the printer number as
a hidden result, so the manager needs no allocation table.  Reports
per-printer utilization.

Run:  python examples/print_farm.py
"""

from repro import Kernel
from repro.stdlib import Spooler
from repro.workloads import Bursty, open_loop


def main():
    kernel = Kernel()
    spooler = Spooler(kernel, printers=3, speed=4, job_max=32)

    completed = []

    def submit(i):
        name = f"doc-{i:03}" + "x" * (8 * (1 + i % 5))  # varying sizes
        yield spooler.print_file(name)
        completed.append((i, kernel.clock.now))

    # Bursts of 6 jobs every 200 ticks: the office pattern.
    kernel.spawn(open_loop(Bursty(burst=6, quiet=200, seed=1), 30, submit))
    kernel.run()

    print(f"{len(completed)} jobs printed by t={kernel.clock.now}\n")
    print(f"{'printer':>8} {'jobs':>6} {'pages':>6} {'busy ticks':>11} {'util %':>7}")
    elapsed = kernel.clock.now
    for printer in spooler.printer_pool:
        busy = sum(end - start for start, end in spooler.busy_intervals[printer.number])
        print(
            f"{printer.number:>8} {len(printer.jobs):>6} "
            f"{printer.pages_printed:>6} {busy:>11} {100 * busy / elapsed:>6.1f}"
        )

    from repro.core.monitoring import max_overlap

    intervals = [iv for ivs in spooler.busy_intervals.values() for iv in ivs]
    print(f"\npeak simultaneous jobs: {max_overlap(intervals)} "
          f"(bounded by {len(spooler.printer_pool)} printers)")
    print("the manager never tracked which printer went to which job —")
    print("each body returned its printer number as a hidden result (§2.8.1)")


if __name__ == "__main__":
    main()
