#!/usr/bin/env python
"""Running a program written in ALPS's own notation (§2, §4).

The paper presents ALPS in a Pascal-like syntax and §4 reports a compiler
in its initial stages.  ``repro.lang`` is that front end: this example
compiles the §2.5.1 readers-writers database *from source text* — hidden
procedure array, quantified guards, `#Write` pending counts, `WriterLast`
starvation avoidance and all — and drives it from Python processes.

Run:  python examples/alps_source.py
"""

from repro import Kernel, Par
from repro.kernel.costs import FREE
from repro.lang import compile_program

DATABASE = """
object Database defines
  proc Read(Key) returns (Data);
  proc Write(Key, Data);
end Database;

object Database implements
  var ReadMax: int := 3;
  var Store := nil;
  var PeakReaders: int := 0;
  var ActiveReaders: int := 0;

  proc Read[1..ReadMax](Key) returns (1);
  begin
    ActiveReaders := ActiveReaders + 1;
    if ActiveReaders > PeakReaders then
      PeakReaders := ActiveReaders;
    end if;
    work(10);                       { the read takes 10 ticks }
    ActiveReaders := ActiveReaders - 1;
    return (Store[Key]);
  end Read;

  proc Write(Key, Data);
  begin
    work(25);                       { the write takes 25 ticks }
    Store[Key] := Data;
  end Write;

  manager
    intercepts Read, Write;
    var ReadCount: int := 0;
    var WriterLast := false;
    var Writing := false;
  begin
    loop
      (i: 1..ReadMax) accept Read[i]
          when ReadCount < ReadMax and not Writing
               and (#Write = 0 or WriterLast) =>
        ReadCount := ReadCount + 1;
        WriterLast := false;
        start Read;
    or
      accept Write
          when ReadCount = 0 and not Writing
               and (#Read = 0 or not WriterLast) =>
        Writing := true;
        start Write;
    or
      (i: 1..ReadMax) await Read[i] =>
        ReadCount := ReadCount - 1;
        finish Read;
    or
      await Write =>
        Writing := false;
        WriterLast := true;
        finish Write;
    end loop;
  end manager;
end Database;
"""


def main():
    kernel = Kernel(costs=FREE)
    module = compile_program(DATABASE)
    db = module.instantiate(kernel, "Database", Store={"config": "v0"})

    print("compiled from ALPS source:", db.definition().describe(), sep="\n")
    print()

    log = []

    def reader(i):
        value = yield db.call("Read", "config")
        log.append(f"[{kernel.clock.now:>4}] reader {i} saw {value!r}")

    def writer(i):
        yield db.call("Write", "config", f"v{i + 1}")
        log.append(f"[{kernel.clock.now:>4}] writer {i} committed v{i + 1}")

    def main_proc():
        yield Par(
            *[lambda i=i: reader(i) for i in range(7)],
            *[lambda i=i: writer(i) for i in range(2)],
        )

    kernel.run_process(main_proc)
    print("\n".join(log))
    print(
        f"\npeak concurrent readers: {db.PeakReaders} (ReadMax={db.ReadMax}); "
        f"final value: {db.Store['config']!r}; t={kernel.clock.now}"
    )


if __name__ == "__main__":
    main()
