#!/usr/bin/env python
"""Watch a run live: ``repro.obs.live`` end to end.

The live telemetry plane aggregates *while the simulation runs*, in
virtual time: sliding-window latency histograms, EWMA-smoothed rates, a
Space-Saving heavy-hitter sketch of the touched keys, and a multi-window
SLO burn-rate monitor whose alert log is replay-identical across runs.

This example drives a :class:`~repro.stdlib.GatedKVStore` past its knee
with Zipf-skewed keys, streams dashboard snapshots to a JSONL file, and
then shows the three ways to consume the plane:

* **in-simulation** — query the aggregates directly (hot keys, the
  per-entry service-time EWMA the admission guard shares);
* **post-hoc** — render the final dashboard text;
* **replay** — reload the JSONL stream and re-render any snapshot::

      python examples/live_dashboard.py
      PYTHONPATH=src python -m repro.obs.live live_run.jsonl          # latest
      PYTHONPATH=src python -m repro.obs.live live_run.jsonl --at 600 # mid-run

Everything printed is deterministic: run it twice, diff nothing.
"""

import argparse

from repro import Kernel
from repro.obs import JsonlSink
from repro.obs.live.dashboard import load_snapshots, render
from repro.obs.sinks import validate_live_jsonl
from repro.stdlib import GatedKVStore
from repro.workloads import Poisson, TrafficEngine, Zipf, watch_traffic

COUNT = 360
SEED = 7


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="live_run.jsonl",
        help="JSONL snapshot/alert stream output path (default: live_run.jsonl)",
    )
    args = parser.parse_args()

    kernel = Kernel(seed=SEED)
    kv = GatedKVStore(kernel, name="kv", read_work=2, write_work=6,
                      request_max=8, queue_cap=16)
    # Key popularity fixed up front: a pure function of the request
    # index, so scheduling can never perturb which request is hot.
    keys = list(Zipf([f"user{i}" for i in range(24)], s=1.3,
                     seed=SEED).stream(COUNT))

    def request(req):
        key = keys[req.index]
        if req.index % 3 == 0:
            return kv.put(key, req.index)
        return kv.get(key)

    engine = TrafficEngine(
        kernel, Poisson(2, seed=SEED), COUNT, request,
        callers=100_000, engines=4, clients=48, seed=SEED,
    )

    # The plane: JSONL sink for the stream, snapshots every 2nd window
    # step, and the standard traffic wire (latency window + rates + SLO
    # burn-rate monitor + heavy-hitter sketch over the KV keys).
    plane = kernel.obs.live
    kernel.obs.add_sink(JsonlSink(args.out), forward_trace=False)
    plane.stream_snapshots(every=2)
    wire = watch_traffic(
        plane, engine, objective=0.9, window=1200, fast=600, slow=3000,
        key=lambda o: keys[o.request.index],
    )

    result = engine.run()
    kernel.obs.close()

    # 1. In-simulation queries (a daemon would poll these mid-run).
    report = plane.hot_keys(wire["sketch_name"])
    print(f"requests: {len(result.outcomes)} issued, "
          f"{result.counts['ok']} ok, {result.counts['shed']} shed")
    print("hot keys (guaranteed share >= 15%):")
    for key in report.candidates(min_share=0.15):
        print(f"  {key}: share >= {report.share(key):.2f}")
    ewma = plane.service_ewma("kv", "get")
    print(f"kv.get service EWMA (shared with PredictedWaitGuard): {ewma}")
    alerts = plane.alert_log()
    print(f"SLO alert transitions: {len(alerts)}")
    for event in alerts:
        print(f"  t={event['time']:5} {event['monitor']} -> {event['state']} "
              f"(fast {event['fast_burn']}x, slow {event['slow_burn']}x)")

    # 2. The final dashboard.
    print()
    print(plane.render())

    # 3. Replay from the stream: the JSONL alone reconstructs every
    # dashboard frame (this is what CI's replay gate does byte-for-byte).
    with open(args.out, encoding="utf-8") as fh:
        lines = fh.readlines()
    problems = validate_live_jsonl(lines)
    snapshots = load_snapshots(lines)
    print(f"stream: {args.out} ({len(lines)} lines, "
          f"{len(snapshots)} snapshots, "
          f"{'OK' if not problems else problems})")
    assert not problems
    assert snapshots and render(snapshots[-1])
    assert report.candidates(min_share=0.15), "Zipf skew must surface a hot key"
    assert any(e["state"] == "firing" for e in alerts), "overload must alert"


if __name__ == "__main__":
    main()
