#!/usr/bin/env python
"""Replicated-dictionary failover under deterministic fault injection.

Two Dictionary replicas serve the same word list from different nodes of
a 4-ring.  A scripted :class:`~repro.faults.FaultPlan` crashes the
primary's node mid-run and restarts it later; every message to the
primary also risks being dropped.  Three mechanisms cooperate:

* clients issue *timed* calls wrapped in ``retry`` — a lost message costs
  one timeout, not a hung process;
* a client that exhausts its retries against the primary falls back to
  the replica (classic client-side failover);
* a :class:`~repro.stdlib.Supervisor` watches the primary: calls that
  were in flight when the node died are captured, and once the node is
  back the Supervisor restarts the object and re-queues them — those
  callers never see an error at all.

Everything runs on the virtual clock from one seed: run it twice and the
timeline is tick-for-tick identical.

Run:  python examples/failover.py
"""

from repro import Kernel
from repro.errors import RemoteCallError
from repro.faults import ExponentialBackoff, FaultPlan, install, retry
from repro.kernel import Delay
from repro.kernel.costs import FREE
from repro.net import ring
from repro.stdlib import Dictionary, Supervisor

WORDS = {"alps": "a language for process scheduling", "manager": "scheduler"}


def main():
    kernel = Kernel(costs=FREE, seed=42, trace=True)
    net = ring(kernel, 4)

    primary = net.node("n1").place(
        Dictionary(kernel, name="primary", entries=WORDS, search_work=10)
    )
    replica = net.node("n3").place(
        Dictionary(kernel, name="replica", entries=WORDS, search_work=10)
    )

    faults = install(
        kernel,
        net,
        FaultPlan(seed=42, detection_delay=15)
        .crash_node("n1", at=120, restart_at=320)
        .drop_messages(0.15, dst="n1"),
    )
    sup = net.node("n2").place(Supervisor(kernel, name="sup", faults=faults))
    sup.watch(primary)
    print("primary on n1, replica on n3, supervisor on n2")
    print(f"fault plan: {faults.plan.describe()}\n")

    def lookup(word):
        """Primary with retries, then replica: the client-side half."""
        try:
            result = yield from retry(
                lambda: primary.search(word, timeout=60),
                ExponentialBackoff(base=20, max_attempts=3, jitter=5),
            )
            source = "primary"
        except RemoteCallError as exc:
            print(f"  t={kernel.clock.now:4} client: primary unreachable ({exc}); "
                  f"trying replica")
            result = yield replica.search(word, timeout=60)
            source = "replica"
        return result, source

    def client(node, period, count):
        def body():
            for i in range(count):
                yield Delay(period)
                word = "alps" if i % 2 == 0 else "manager"
                result, source = yield from lookup(word)
                print(f"  t={kernel.clock.now:4} {node} got {word!r} "
                      f"from the {source}")

        net.node(node).spawn(body, name=f"client_{node}")

    # One caller is deliberately mid-call when n1 dies at t=120: the
    # Supervisor re-queues it and it completes after the restart.
    def unlucky():
        yield Delay(115)
        print(f"  t={kernel.clock.now:4} n0 calls the primary "
              "(will be interrupted by the crash)")
        value = yield primary.search("alps")
        print(f"  t={kernel.clock.now:4} n0 interrupted call completed "
              f"anyway: {value!r}")

    client("n0", period=70, count=6)
    client("n2", period=90, count=4)
    net.node("n0").spawn(unlucky, name="unlucky")

    print("timeline:")
    kernel.run(until=1000)

    print(f"\nsupervisor restarts: {sup.restarts}")
    stats = kernel.stats.custom
    for key in ("dropped_requests", "dropped_responses", "retries",
                "failed_calls", "requeued_calls", "supervisor_restarts"):
        print(f"  {key:20} {stats.get(key, 0)}")
    fault_events = [(e.time, e.kind, e.process) for e in kernel.trace
                    if e.kind in ("crash", "restart")]
    print(f"  fault events         {fault_events}")


if __name__ == "__main__":
    main()
