#!/usr/bin/env python
"""Replicated-object failover, now first-class: ``repro.replication``.

An earlier version of this example hand-rolled the whole pattern —
timed calls, retry, fall-back-to-replica, Supervisor — at every call
site.  :class:`~repro.replication.Replicated` packages it: three KVStore
replicas on distinct nodes of a 6-ring, a write sequencer that applies
every ``put`` primary-first and forwards it to the backups before
acknowledging, and a heartbeat-driven view that promotes the best backup
when the primary's node dies and catches the ex-primary up when it
returns as a backup.

Clients just write ``yield from rep.get(...)`` / ``yield from
rep.put(...)``; every fault below is absorbed by the wrapper:

* the primary's node crashes mid-run (reads fail over, a backup is
  promoted, no acknowledged write is lost);
* the node restarts later (the Supervisor revives the replica, the view
  monitor replays the writes it missed, and it rejoins as a backup);
* messages toward one backup are lossy throughout.

Everything runs on the virtual clock from one seed: run it twice and the
timeline is tick-for-tick identical.

Run:  python examples/failover.py
"""

from repro import Kernel
from repro.errors import RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay
from repro.kernel.costs import FREE
from repro.net import ring
from repro.replication import Replicated
from repro.stdlib import KVStore, Supervisor

WORDS = {
    "alps": "a language for process scheduling",
    "manager": "scheduler",
    "entry": "remote procedure",
}


def main():
    kernel = Kernel(costs=FREE, seed=42, trace=True)
    net = ring(kernel, 6)

    faults = install(
        kernel,
        net,
        FaultPlan(seed=42, detection_delay=15)
        .crash_node("n0", at=300, restart_at=900)
        .drop_messages(0.10, dst="n2"),
    )
    sup = net.node("n5").place(Supervisor(kernel, name="sup", faults=faults))

    rep = Replicated(
        lambda name: KVStore(kernel, name=name, data=dict(WORDS)),
        net,
        replicas=3,
        name="dict",
        writes=("put", "delete"),
        nodes=["n0", "n2", "n4"],
        supervisor=sup,
        call_timeout=60,
        heartbeat_interval=40,
    )
    print(rep.describe())
    print(f"supervisor on n5; fault plan: {faults.plan.describe()}\n")

    def reader(node, period, count):
        def body():
            for i in range(count):
                yield Delay(period)
                word = ("alps", "manager", "entry")[i % 3]
                value = yield from rep.get(word)
                print(f"  t={kernel.clock.now:4} {node} read {word!r} = {value!r} "
                      f"(primary is {rep.view.primary} on {rep.primary_node()})")

        net.node(node).spawn(body, name=f"reader_{node}")

    def writer():
        for i in range(8):
            yield Delay(95)
            word, meaning = f"word{i}", f"meaning {i}"
            try:
                yield from rep.put(word, meaning)
                print(f"  t={kernel.clock.now:4} writer acked {word!r} "
                      f"(version {rep.view.version})")
            except RemoteCallError:
                print(f"  t={kernel.clock.now:4} writer: {word!r} failed")

    reader("n1", period=70, count=9)
    reader("n3", period=110, count=6)
    kernel.spawn(writer, name="writer")

    print("timeline:")
    kernel.run(until=2200)

    print("\nview transitions (tick, event, replica, version):")
    for transition in rep.view.transitions:
        print(f"  {transition}")
    print("replica versions:", rep.view.versions,
          "acknowledged:", rep.view.version)
    datas = [replica.data for replica in rep.replicas()]
    print("replicas converged:", datas[0] == datas[1] == datas[2])
    for name in ("replication.reads", "replication.writes",
                 "replication.failovers", "replication.promotions",
                 "replication.rejoins", "replication.catchup_writes",
                 "faults.requeued_calls", "supervisor.restarts",
                 "faults.dropped_requests"):
        print(f"  {name:28} {kernel.metrics.value(name)}")


if __name__ == "__main__":
    main()
