#!/usr/bin/env python
"""A multiprocessor dictionary server with request combining (§2.7.1).

Simulates the paper's motivating scenario: many clients query a dictionary
concurrently; popular words are queried repeatedly, and the manager
combines in-flight duplicates so one search serves many callers.  The
script runs the same Zipf-skewed query stream with combining on and off
and reports the work saved.

Run:  python examples/dictionary_server.py
"""

from repro import Kernel, Par
from repro.stdlib import Dictionary
from repro.workloads import Zipf, word_corpus


def build_dictionary_entries(words):
    return {word: f"definition of {word}" for word in words}


def run_trial(combining: bool, queries, entries) -> dict:
    kernel = Kernel()
    dictionary = Dictionary(
        kernel,
        entries=entries,
        search_max=16,
        search_work=50,  # one search costs 50 ticks of simulated CPU
        combining=combining,
        record_calls=True,
    )

    def client(word):
        return (yield dictionary.search(word))

    def main():
        return (yield Par(*[lambda w=w: client(w) for w in queries]))

    results = kernel.run_process(main)
    assert all(r == entries[w] for r, w in zip(results, queries))
    return {
        "combining": combining,
        "queries": len(queries),
        "searches_executed": dictionary.searches_executed,
        "combined": kernel.stats.calls_combined,
        "work_ticks": kernel.stats.work_ticks,
        "elapsed": kernel.clock.now,
    }


def main():
    words = word_corpus(200)
    entries = build_dictionary_entries(words)
    # Zipf-skewed popularity: a handful of words dominate the stream.
    sampler = Zipf(words, s=1.3, seed=7)
    queries = list(sampler.stream(64))
    distinct = len(set(queries))
    print(f"{len(queries)} queries over {distinct} distinct words "
          f"(Zipf s=1.3 over {len(words)}-word corpus)\n")

    header = f"{'combining':>10} {'searches':>9} {'combined':>9} {'work':>8} {'elapsed':>8}"
    print(header)
    print("-" * len(header))
    for combining in (False, True):
        row = run_trial(combining, queries, entries)
        print(
            f"{str(row['combining']):>10} {row['searches_executed']:>9} "
            f"{row['combined']:>9} {row['work_ticks']:>8} {row['elapsed']:>8}"
        )

    print(
        "\nCombining answers duplicate in-flight queries from one search\n"
        "body — 'a software adaptation of the memory combining used in\n"
        "the NYU Ultracomputer' (§2.7)."
    )


if __name__ == "__main__":
    main()
