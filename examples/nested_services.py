#!/usr/bin/env python
"""The nested-call problem (§2.3): ALPS managers vs Ada-style rendezvous.

Two services call each other: X.p calls Y.q, which calls back into X.r.
With Ada-style rendezvous the server task is busy inside X.p and can never
accept X.r — deadlock.  With ALPS managers, start is asynchronous: X's
manager starts p's body and is immediately ready to accept r.

Run:  python examples/nested_services.py
"""

from repro import Kernel, Select
from repro.baselines import AdaTask
from repro.core import (
    AcceptGuard,
    AlpsObject,
    AwaitGuard,
    Finish,
    Start,
    entry,
    manager_process,
)
from repro.errors import DeadlockError


def alps_version():
    kernel = Kernel()
    holder = {}

    class ServiceX(AlpsObject):
        @entry(returns=1, array=2)
        def p(self):
            value = yield holder["y"].q()
            return f"p({value})"

        @entry(returns=1, array=2)
        def r(self):
            return "r"

        @manager_process(intercepts=["p", "r"])
        def mgr(self):
            while True:
                result = yield Select(
                    AcceptGuard(self, "p"),
                    AcceptGuard(self, "r"),
                    AwaitGuard(self, "p"),
                    AwaitGuard(self, "r"),
                )
                if isinstance(result.guard, AcceptGuard):
                    yield Start(result.value)  # asynchronous: stays receptive
                else:
                    yield Finish(result.value)

    class ServiceY(AlpsObject):
        @entry(returns=1, array=2)
        def q(self):
            value = yield holder["x"].r()  # calls BACK into X
            return f"q({value})"

        @manager_process(intercepts=["q"])
        def mgr(self):
            while True:
                result = yield Select(
                    AcceptGuard(self, "q"), AwaitGuard(self, "q")
                )
                if isinstance(result.guard, AcceptGuard):
                    yield Start(result.value)
                else:
                    yield Finish(result.value)

    holder["x"] = ServiceX(kernel, name="X")
    holder["y"] = ServiceY(kernel, name="Y")

    def client():
        return (yield holder["x"].p())

    result = kernel.run_process(client)
    return f"completed: {result} (t={kernel.clock.now})"


def rendezvous_version():
    kernel = Kernel()
    tasks = {}

    def server_x(x):
        while True:
            request = yield x.accept("p", "r")
            if request.entry == "p":
                # The task itself performs the nested call: while waiting
                # for Y it cannot accept r.
                value = yield from tasks["y"].call("q")
                yield x.reply(request, f"p({value})")
            else:
                yield x.reply(request, "r")

    def server_y(y):
        while True:
            request = yield y.accept("q")
            value = yield from tasks["x"].call("r")
            yield y.reply(request, f"q({value})")

    tasks["x"] = AdaTask(kernel, ["p", "r"], server_x, name="X")
    tasks["y"] = AdaTask(kernel, ["q"], server_y, name="Y")

    def client():
        return (yield from tasks["x"].call("p"))

    kernel.spawn(client)
    try:
        kernel.run()
        return "completed (unexpected!)"
    except DeadlockError as exc:
        lines = str(exc).splitlines()
        return "DEADLOCK detected:\n    " + "\n    ".join(lines[1:])


def main():
    print("call chain: client -> X.p -> Y.q -> X.r\n")
    print("ALPS managers (asynchronous start):")
    print(f"  {alps_version()}\n")
    print("Ada-style rendezvous (service inside the task):")
    print(f"  {rendezvous_version()}\n")
    print('§2.3: "Note that DP, Ada and SR suffer from the nested calls problem."')


if __name__ == "__main__":
    main()
