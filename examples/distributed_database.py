#!/usr/bin/env python
"""A readers-writers database shared across the paper's transputer grid.

Places the §2.5.1 Database object on one node of a 4×4 transputer network
(the machine §4 says ALPS was being implemented on) and drives it with
readers and writers from every other node.  Remote entry calls pay
link latency automatically; the manager's scheduling guarantees the
exclusion invariants regardless of where callers live.

Run:  python examples/distributed_database.py
"""

from repro import Kernel
from repro.core.monitoring import response_times
from repro.kernel import Delay
from repro.net import transputer_grid
from repro.stdlib import Database


def main():
    kernel = Kernel()
    net = transputer_grid(kernel, rows=4, cols=4, link_latency=1)
    db = Database(
        kernel,
        read_max=4,
        read_work=10,
        write_work=25,
        initial={"config": "v1"},
        record_calls=True,
    )
    home = net.node("t1_1")
    home.place(db)
    print(f"database placed on {home.name}; grid diameter = {net.diameter()} hops\n")

    def reader(node_name, i):
        yield Delay(i * 7)
        value = yield db.read("config")
        return (node_name, value)

    def writer(i):
        yield Delay(40 + i * 60)
        yield db.write("config", f"v{i + 2}")

    for index, node in enumerate(net.nodes()):
        node.spawn(reader, node.name, index)
        if node.name in ("t0_0", "t3_3"):
            node.spawn(writer, index % 2)

    kernel.run()

    calls = db.completed_calls()
    reads = [c for c in calls if c.entry == "read"]
    writes = [c for c in calls if c.entry == "write"]
    print(f"served {len(reads)} reads and {len(writes)} writes by t={kernel.clock.now}")
    print(f"exclusion violations: {db.exclusion_violations}")
    print(f"peak concurrent readers: {db.max_concurrent_readers} (ReadMax=4)")
    print(f"network traffic: {net.traffic} hop-units\n")

    print("read response times by caller distance from t1_1:")
    by_distance = {}
    for call in reads:
        node = call.caller.node
        distance = net.latency(node, home) if node is not home else 0
        by_distance.setdefault(distance, []).append(call.response_time)
    for distance in sorted(by_distance):
        summary = response_times(
            [c for c in reads
             if (net.latency(c.caller.node, home) if c.caller.node is not home else 0) == distance]
        )
        print(f"  {distance} hops: mean={summary.mean:6.1f} ticks over {summary.count} reads")


if __name__ == "__main__":
    main()
