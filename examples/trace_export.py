#!/usr/bin/env python
"""Export a failover run as a Chrome trace: ``repro.obs`` end to end.

The observability layer records one span tree per entry call — client
issue, RPC request hop, manager phases, body execution, RPC response —
and stitches replicated writes across the sequencer: the client's
``replicated`` span parents the sequencer's ``replication`` span, which
parents the per-replica apply and forward calls.  Heartbeat probe spans
and view-reconcile spans connect failure *detection* to *promotion* and
*catch-up* on the same timeline.

This example runs a small crash-and-failover scenario (three KVStore
replicas on a 6-ring, the primary's node dies mid-run and restarts
later) with a :class:`~repro.obs.ChromeTraceSink` attached, then prints
what the span log shows: how many connected write trees survived the
failover, and the detection → promotion chain.

Open the output in a trace viewer::

    python examples/trace_export.py --trace-out run.json
    # then load run.json at https://ui.perfetto.dev (or chrome://tracing)

Every track is one ALPS process; spans nest by parent links; the
timeline axis is virtual ticks (rendered as microseconds).
"""

import argparse
import json

from repro import Kernel
from repro.errors import RemoteCallError
from repro.faults import FaultPlan, install
from repro.kernel import Delay
from repro.kernel.costs import FREE
from repro.net import ring
from repro.obs import ChromeTraceSink, validate_chrome_trace
from repro.replication import Replicated
from repro.stdlib import KVStore, Supervisor


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-out", default="run.json",
        help="Chrome trace_event output path (default: run.json)",
    )
    args = parser.parse_args()

    kernel = Kernel(costs=FREE, seed=42)
    sink = kernel.obs.add_sink(ChromeTraceSink(args.trace_out))
    net = ring(kernel, 6)

    faults = install(
        kernel,
        net,
        FaultPlan(seed=42, detection_delay=15)
        .crash_node("n0", at=400, restart_at=1200),
    )
    sup = net.node("n5").place(Supervisor(kernel, name="sup", faults=faults))
    rep = Replicated(
        lambda name: KVStore(kernel, name=name),
        net,
        replicas=3,
        name="kv",
        writes=("put", "delete"),
        nodes=["n0", "n2", "n4"],
        supervisor=sup,
        call_timeout=60,
        heartbeat_interval=40,
        seed=42,
    )

    acked = [0]

    def writer():
        for i in range(16):
            try:
                yield from rep.put(f"k{i % 4}", i)
                acked[0] += 1
            except RemoteCallError:
                pass
            yield Delay(110)

    def reader():
        for i in range(12):
            yield Delay(140)
            try:
                yield from rep.get(f"k{i % 4}")
            except RemoteCallError:
                pass

    kernel.spawn(writer, name="writer")
    net.node("n1").spawn(reader, name="reader")
    kernel.run(until=2400)
    kernel.obs.close()

    # What the exported timeline contains.
    obs = kernel.obs
    writes = obs.find_spans(kind="replicated")
    connected = 0
    for write in writes:
        seq = [s for s in obs.children_of(write.span_id) if s.kind == "replication"]
        calls = [
            c
            for s in seq
            for c in obs.children_of(s.span_id)
            if c.kind == "call"
        ]
        if seq and calls and all(obs.children_of(c.span_id) for c in calls):
            connected += 1
    print(f"acknowledged writes : {acked[0]}")
    print(f"write span trees    : {len(writes)} "
          f"({connected} connected client → sequencer → call → phases)")

    probes = {s.span_id: s for s in obs.find_spans(kind="heartbeat")}
    for t in rep.view.transitions:
        tick, event, name, version = t
        via = getattr(t, "span_id", None)
        parent = obs.spans and next(
            (s for s in obs.spans if s.span_id == via), None
        )
        chain = ""
        if parent is not None and parent.parent_id in probes:
            chain = f" ← probe {probes[parent.parent_id].name!r}"
        print(f"  t={tick:4} view {event:8} {name} v{version}"
              f" (span {via}{chain})")

    payload = json.load(open(args.trace_out, encoding="utf-8"))
    problems = validate_chrome_trace(payload)
    print(f"trace file          : {args.trace_out} "
          f"({len(payload['traceEvents'])} events, "
          f"{'OK' if not problems else problems})")
    print(f"open it at https://ui.perfetto.dev")
    assert not problems
    assert connected == acked[0] > 0
    return sink


if __name__ == "__main__":
    main()
